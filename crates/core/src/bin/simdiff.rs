//! `simdiff` — the metric drift gate.
//!
//! Compares two RunLogs, or a RunLog against a committed baseline,
//! counter by counter under the drift classes declared on the
//! descriptor tables (`Exact` for the deterministic majority,
//! `Tolerance(ppm)` for DRAM-timing and ratio counters). Prints the
//! ranked drift table and exits non-zero on any out-of-band drift —
//! the CI job that catches a refactor silently shifting simulation
//! results while every unit test still passes.
//!
//! Usage:
//!   simdiff <base.jsonl> <current.jsonl>       diff two RunLogs
//!   simdiff --baseline BASELINES.json <current.jsonl>
//!                                              gate a RunLog against the
//!                                              committed baseline
//!   simdiff --write-baseline BASELINES.json <runlog.jsonl>
//!                                              aggregate a RunLog into a
//!                                              fresh baseline document
//!                                              (the `rebaseline.sh` path)
//!
//! `--json` (anywhere in the argument list) switches the drift report
//! to a machine-readable JSON document — verdict, per-counter rows
//! (counter, baseline, observed, drift_ppm, class, out_of_band) in the
//! same worst-first rank, and the missing/extra lists — for CI
//! annotations and dashboards. Exit codes are unchanged.
//!
//! Comparisons across mismatched `effort` or `sim_mode` provenance are
//! refused (exit 2): sampled-mode counters are extrapolated estimates
//! and different efforts size different workloads, so the numbers are
//! not comparable — the same guard `bench_smoke.sh` applies to wall
//! times.

use std::process::ExitCode;

use middlesim::engine::probe::descriptor_tables;
use probes::drift::{comparability_error, diff, Baseline, DriftPolicy};
use probes::report;

fn usage() -> ExitCode {
    eprintln!(
        "usage: simdiff [--json] <base.jsonl> <current.jsonl>\n       simdiff [--json] \
         --baseline BASELINES.json <current.jsonl>\n       simdiff --write-baseline \
         BASELINES.json <runlog.jsonl>"
    );
    ExitCode::from(2)
}

fn read(path: &str) -> Result<String, ExitCode> {
    std::fs::read_to_string(path).map_err(|e| {
        eprintln!("simdiff: cannot read {path}: {e}");
        ExitCode::FAILURE
    })
}

fn load_log(path: &str) -> Result<Baseline, ExitCode> {
    let src = read(path)?;
    let log = report::check(&src).map_err(|e| {
        eprintln!("simdiff: {path}: {e}");
        ExitCode::FAILURE
    })?;
    let base = Baseline::from_log(&log);
    if base.counters.is_empty() {
        eprintln!("simdiff: {path}: no counters to compare (empty RunLog?)");
        return Err(ExitCode::FAILURE);
    }
    Ok(base)
}

fn load_baseline(path: &str) -> Result<Baseline, ExitCode> {
    let src = read(path)?;
    Baseline::parse(&src).map_err(|e| {
        eprintln!("simdiff: {path}: {e}");
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    args.retain(|a| a != "--json");
    let (base, current) = match args.as_slice() {
        [flag, baseline_path, runlog_path] if flag == "--write-baseline" => {
            let base = match load_log(runlog_path) {
                Ok(b) => b,
                Err(code) => return code,
            };
            if let Err(e) = std::fs::write(baseline_path, base.to_json()) {
                eprintln!("simdiff: cannot write {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "wrote {baseline_path} ({} counters from {runlog_path})",
                base.counters.len()
            );
            return ExitCode::SUCCESS;
        }
        [flag, baseline_path, runlog_path] if flag == "--baseline" => {
            let base = match load_baseline(baseline_path) {
                Ok(b) => b,
                Err(code) => return code,
            };
            let current = match load_log(runlog_path) {
                Ok(b) => b,
                Err(code) => return code,
            };
            (base, current)
        }
        [base_path, current_path] => {
            let base = match load_log(base_path) {
                Ok(b) => b,
                Err(code) => return code,
            };
            let current = match load_log(current_path) {
                Ok(b) => b,
                Err(code) => return code,
            };
            (base, current)
        }
        _ => return usage(),
    };

    if let Some(err) = comparability_error(&base.provenance, &current.provenance) {
        eprintln!("simdiff: refusing comparison: {err}");
        return ExitCode::from(2);
    }

    let policy = DriftPolicy::new(descriptor_tables());
    let report = diff(&base, &current, &policy);
    if json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render());
    }
    if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
