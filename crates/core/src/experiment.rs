//! Experiment orchestration: workload factories, warm-up/measurement
//! windows, and the multi-seed variability methodology.
//!
//! Every figure experiment follows the paper's protocol: build the
//! workload, warm it up (caches, JIT, bean cache, steady-state heap),
//! reset all statistics, measure a window, and repeat across seeds to get
//! means and error bars (Section 3.3).

use memsys::{Addr, AddrRange};
use simstats::{run_seeds, Summary};
use workloads::ecperf::{Ecperf, EcperfConfig};
use workloads::model::Workload;
use workloads::specjbb::{SpecJbb, SpecJbbConfig};

use crate::machine::{Machine, MachineConfig, WindowReport};

/// Base address of the workload's memory region: above the engine's
/// reserved kernel-tick lines, below nothing else.
pub const WORKLOAD_BASE: u64 = 0x2000_0000;

/// How hard an experiment works: `Quick` for tests and smoke runs,
/// `Standard` for the bench harness, `Full` for paper-strength windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Short windows, 1 seed.
    Quick,
    /// Medium windows, 3 seeds (bench default).
    Standard,
    /// Long windows, 5 seeds.
    Full,
}

impl Effort {
    /// Warm-up length in cycles.
    pub fn warmup(self) -> u64 {
        match self {
            Effort::Quick => 15_000_000,
            Effort::Standard => 40_000_000,
            Effort::Full => 120_000_000,
        }
    }

    /// Measurement-window length in cycles.
    pub fn window(self) -> u64 {
        match self {
            Effort::Quick => 40_000_000,
            Effort::Standard => 120_000_000,
            Effort::Full => 400_000_000,
        }
    }

    /// Seeds per configuration (the Alameldeen–Wood methodology).
    pub fn seeds(self) -> u64 {
        match self {
            Effort::Quick => 1,
            Effort::Standard => 3,
            Effort::Full => 5,
        }
    }

    /// Heap/database scale divisor for reference-driven runs.
    pub fn scale_divisor(self) -> u64 {
        match self {
            Effort::Quick => 32,
            Effort::Standard => 16,
            Effort::Full => 8,
        }
    }
}

/// Builds a SPECjbb machine: `warehouses` threads bound to `pset`
/// processors of a 16-way E6000.
pub fn jbb_machine(pset: usize, warehouses: usize, seed: u64, effort: Effort) -> Machine<SpecJbb> {
    let cfg = SpecJbbConfig::scaled(warehouses, effort.scale_divisor());
    let region = AddrRange::new(Addr(WORKLOAD_BASE), cfg.required_bytes());
    let wl = SpecJbb::new(cfg, region);
    let mut mc = MachineConfig::e6000(pset);
    mc.seed = seed;
    Machine::new(mc, wl)
}

/// Builds a SPECjbb machine from an explicit workload configuration.
pub fn jbb_machine_with(pset: usize, cfg: SpecJbbConfig, seed: u64) -> Machine<SpecJbb> {
    let region = AddrRange::new(Addr(WORKLOAD_BASE), cfg.required_bytes());
    let wl = SpecJbb::new(cfg, region);
    let mut mc = MachineConfig::e6000(pset);
    mc.seed = seed;
    Machine::new(mc, wl)
}

/// Builds an ECperf application-server machine: the thread pool is tuned
/// to the processor count (as the paper tunes per configuration).
pub fn ecperf_machine(pset: usize, seed: u64, effort: Effort) -> Machine<Ecperf> {
    let mut cfg = EcperfConfig::scaled(10, effort.scale_divisor());
    cfg.threads = (pset * 6).clamp(12, 96);
    cfg.db_connections = (cfg.threads as u32 / 2).max(2);
    ecperf_machine_with(pset, cfg, seed)
}

/// Builds an ECperf machine from an explicit workload configuration.
pub fn ecperf_machine_with(pset: usize, cfg: EcperfConfig, seed: u64) -> Machine<Ecperf> {
    let region = AddrRange::new(Addr(WORKLOAD_BASE), cfg.required_bytes());
    let wl = Ecperf::new(cfg, region);
    let mut mc = MachineConfig::e6000(pset);
    mc.seed = seed;
    Machine::new(mc, wl)
}

/// Warm up, measure one window, and return the report.
pub fn measure<W: Workload>(machine: &mut Machine<W>, effort: Effort) -> WindowReport {
    machine.run_until(effort.warmup());
    machine.begin_measurement();
    let start = machine.time();
    machine.run_until(start + effort.window());
    machine.window_report()
}

/// Runs `build` once per seed, measuring `metric` of the window report,
/// and summarizes (mean ± σ) — the per-point recipe for every figure with
/// error bars.
pub fn measure_seeds<W, B, M>(effort: Effort, mut build: B, mut metric: M) -> Summary
where
    W: Workload,
    B: FnMut(u64) -> Machine<W>,
    M: FnMut(&WindowReport, &Machine<W>) -> f64,
{
    run_seeds(effort.seeds(), |seed| {
        let mut m = build(seed);
        let report = measure(&mut m, effort);
        metric(&report, &m)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effort_levels_are_ordered() {
        assert!(Effort::Quick.window() < Effort::Standard.window());
        assert!(Effort::Standard.window() < Effort::Full.window());
        assert!(Effort::Quick.seeds() <= Effort::Full.seeds());
    }

    #[test]
    fn measure_seeds_aggregates() {
        let s = measure_seeds(
            Effort::Quick,
            |seed| jbb_machine(1, 2, seed, Effort::Quick),
            |r, _| r.transactions as f64,
        );
        assert_eq!(s.n(), 1);
        assert!(s.mean() > 0.0);
    }
}
