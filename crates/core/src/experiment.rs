//! Experiment orchestration: workload factories, warm-up/measurement
//! windows, the multi-seed variability methodology, and the parallel
//! [`ExperimentPlan`] runner all figure experiments fan out through.
//!
//! Every figure experiment follows the paper's protocol: build the
//! workload, warm it up (caches, JIT, bean cache, steady-state heap),
//! reset all statistics, measure a window, and repeat across seeds to get
//! means and error bars (Section 3.3).
//!
//! Runs at different seeds or configurations never share state — each
//! builds its own machine and RNG — so the plan can fan them across a
//! worker pool and still produce *bit-identical* results to a serial run:
//! outputs are merged in input order, and every floating-point reduction
//! happens after the merge.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use memsys::{Addr, AddrRange};
use probes::registry::Snapshot;
use probes::runlog::{
    AttribRecord, EventRecord, HistRecord, IntervalRecord, JobSpan, RunLog, RunMeta,
    SampleUnitRecord,
};
use probes::Histogram;
use simstats::Summary;
use workloads::ecperf::{Ecperf, EcperfConfig};
use workloads::model::Workload;
use workloads::specjbb::{SpecJbb, SpecJbbConfig};

use crate::engine::{
    measure_sampled, IntervalSample, Machine, MachineConfig, SampledRun, SamplingConfig, SimMode,
    WindowReport,
};

/// Base address of the workload's memory region: above the engine's
/// reserved kernel-tick lines, below nothing else.
pub const WORKLOAD_BASE: u64 = 0x2000_0000;

/// How hard an experiment works: `Quick` for tests and smoke runs,
/// `Standard` for the bench harness, `Full` for paper-strength windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Short windows, 1 seed.
    Quick,
    /// Medium windows, 3 seeds (bench default).
    Standard,
    /// Long windows, 5 seeds.
    Full,
}

impl Effort {
    /// Warm-up length in cycles.
    pub fn warmup(self) -> u64 {
        match self {
            Effort::Quick => 15_000_000,
            Effort::Standard => 40_000_000,
            Effort::Full => 120_000_000,
        }
    }

    /// Measurement-window length in cycles.
    pub fn window(self) -> u64 {
        match self {
            Effort::Quick => 40_000_000,
            Effort::Standard => 120_000_000,
            Effort::Full => 400_000_000,
        }
    }

    /// Seeds per configuration (the Alameldeen–Wood methodology).
    pub fn seeds(self) -> u64 {
        match self {
            Effort::Quick => 1,
            Effort::Standard => 3,
            Effort::Full => 5,
        }
    }

    /// Heap/database scale divisor for reference-driven runs.
    pub fn scale_divisor(self) -> u64 {
        match self {
            Effort::Quick => 32,
            Effort::Standard => 16,
            Effort::Full => 8,
        }
    }

    /// A relative cost hint for one simulation job on a `system_size`-
    /// processor machine at this effort: simulated work scales with the
    /// run length (warm-up + window) times the processors stepped.
    /// Units are arbitrary — hints only need to *order* jobs (see
    /// [`ExperimentPlan::run_hinted`]).
    pub fn cost_hint(self, system_size: usize) -> u64 {
        (self.warmup() + self.window()) * system_size.max(1) as u64
    }

    /// The preset's name, as the RunLog records it.
    pub fn name(self) -> &'static str {
        match self {
            Effort::Quick => "quick",
            Effort::Standard => "standard",
            Effort::Full => "full",
        }
    }

    /// The sampled-mode configuration scaled to this preset's window.
    pub fn sampling(self) -> SamplingConfig {
        SamplingConfig::for_window(self.window())
    }

    /// The sampled [`SimMode`] for this preset.
    pub fn sampled_mode(self) -> SimMode {
        SimMode::Sampled(self.sampling())
    }
}

/// Telemetry one job can ship into the run log alongside its output:
/// an end-of-window counter snapshot, an `IntervalSampler` series, and
/// named latency histograms. Everything here rides outside the merge
/// path — attaching or dropping it never changes merged outputs.
#[derive(Debug, Clone, Default)]
pub struct JobTelemetry {
    /// End-of-job counter snapshot for the job's span.
    pub counters: Option<Snapshot>,
    /// The job's sampled interval series, in time order.
    pub intervals: Vec<IntervalSample>,
    /// Named histograms, e.g. `("mem.latency", h)`.
    pub hists: Vec<(String, Histogram)>,
    /// The sampled-mode unit schedule, when the job ran sampled. The
    /// job fills `unit`/`cluster`/`weight_ppm`; the runner stamps
    /// `run`/`id` when the records land in the log.
    pub samples: Vec<SampleUnitRecord>,
    /// Sim-time timeline events (GC pauses, window resets, sample-unit
    /// strata, DRAM stall episodes). As with `samples`, the job fills
    /// name and `[start, end]`; the runner stamps `run`/`id`.
    pub events: Vec<EventRecord>,
    /// Cycle-attribution stacks from an
    /// [`AttribProfiler`](crate::engine::AttribProfiler). As with
    /// `samples`, the job fills stack and cycles; the runner stamps
    /// `run`/`id`.
    pub attribs: Vec<AttribRecord>,
}

impl JobTelemetry {
    /// Telemetry carrying only a counter snapshot (the `run_probed`
    /// shape).
    pub fn counters(snapshot: Option<Snapshot>) -> Self {
        JobTelemetry {
            counters: snapshot,
            ..JobTelemetry::default()
        }
    }

    /// Attaches a sampled run's unit schedule (placeholder `run`/`id`;
    /// the plan runner stamps the real ones at emission).
    pub fn with_samples(mut self, sampled: Option<&SampledRun>) -> Self {
        if let Some(s) = sampled {
            self.samples = s.sample_units(0, 0);
            self.events.extend(s.event_records(0, 0));
        }
        self
    }

    /// Appends timeline events (placeholder `run`/`id`, stamped at
    /// emission like `samples`).
    pub fn with_events(mut self, events: impl IntoIterator<Item = EventRecord>) -> Self {
        self.events.extend(events);
        self
    }

    /// Appends cycle-attribution stacks (placeholder `run`/`id`,
    /// stamped at emission like `samples`).
    pub fn with_attribs(mut self, attribs: impl IntoIterator<Item = AttribRecord>) -> Self {
        self.attribs.extend(attribs);
        self
    }
}

/// The claim order for cost-hinted runs: largest first, ties broken by
/// input position. Separated out (and public) so schedulers and tests
/// can reason about the exact order workers claim jobs in.
pub fn largest_first_order(costs: &[u64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(costs[i]), i));
    order
}

/// A parallel experiment runner: fans independent simulation jobs (seeds
/// × configurations) over a pool of `std::thread` workers and merges
/// their results in input order.
///
/// Determinism contract: for the same inputs and job function, the
/// returned vector is identical whatever the thread count — including
/// `1`, which runs inline with no pool at all. Jobs must therefore be
/// pure functions of their input (every machine builder in this module
/// is: the seed fully determines the run).
///
/// A plan may carry a [`RunLog`] (see [`ExperimentPlan::with_run_log`]):
/// every `run_*` call then emits one `run` event plus a [`JobSpan`] per
/// job. Spans are recorded on the worker threads as jobs finish and
/// never touch the output slots, so logged runs stay bit-identical to
/// unlogged ones.
#[derive(Debug, Clone)]
pub struct ExperimentPlan {
    effort: Effort,
    mode: SimMode,
    threads: usize,
    log: Option<LogBinding>,
    job_labels: Option<Arc<Vec<String>>>,
}

/// A RunLog plus the tag the plan's runs are recorded under.
#[derive(Debug, Clone)]
struct LogBinding {
    log: Arc<RunLog>,
    tag: String,
}

impl ExperimentPlan {
    /// A plan running at `effort` with one worker per available core.
    pub fn new(effort: Effort) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ExperimentPlan {
            effort,
            mode: SimMode::Full,
            threads,
            log: None,
            job_labels: None,
        }
    }

    /// A strictly serial plan (no worker pool).
    pub fn serial(effort: Effort) -> Self {
        ExperimentPlan::new(effort).with_threads(1)
    }

    /// The same plan with an explicit worker count (min 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Attaches a run log: every subsequent `run_*` call on this plan
    /// records its spans there under `tag`. Logging observes the runner
    /// from outside the merge path; outputs are unchanged.
    pub fn with_run_log(mut self, log: Arc<RunLog>, tag: &str) -> Self {
        self.log = Some(LogBinding {
            log,
            tag: tag.to_string(),
        });
        self
    }

    /// Human labels for the next batch's jobs, by input index (spans
    /// fall back to bare indices for unlabeled batches).
    pub fn with_job_labels(mut self, labels: Vec<String>) -> Self {
        self.job_labels = Some(Arc::new(labels));
        self
    }

    /// The same plan in a different simulation mode. Sampled mode only
    /// changes *how* each job's window is measured (fast-forward +
    /// extrapolation); job fan-out, merge order and determinism are
    /// untouched.
    pub fn with_mode(mut self, mode: SimMode) -> Self {
        self.mode = mode;
        self
    }

    /// The plan's simulation mode.
    pub fn mode(&self) -> &SimMode {
        &self.mode
    }

    /// The plan's effort level.
    pub fn effort(&self) -> Effort {
        self.effort
    }

    /// The plan's worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `job` over every input, returning outputs in input order.
    ///
    /// With more than one worker, inputs are claimed from a shared
    /// counter (work stealing by index), so long and short jobs pack
    /// tightly; each output lands in its input's slot, which is what
    /// makes the merge order — and therefore every downstream
    /// floating-point reduction — independent of scheduling.
    pub fn run<I, O>(&self, inputs: &[I], job: impl Fn(&I) -> O + Sync) -> Vec<O>
    where
        I: Sync,
        O: Send,
    {
        let order: Vec<usize> = (0..inputs.len()).collect();
        self.run_ordered(
            inputs,
            &order,
            None,
            |i| (job(i), JobTelemetry::default()),
            |_| {},
        )
    }

    /// Like [`ExperimentPlan::run`], but jobs carry a relative cost hint
    /// and workers claim the *largest remaining* job first. On mixed
    /// batches (a Full-effort 16-processor point next to uniprocessor
    /// sweeps) this keeps the big jobs from being claimed last and
    /// dragging the tail; outputs still merge in input order, so results
    /// are bit-identical to [`ExperimentPlan::run`]'s.
    pub fn run_hinted<I, O>(
        &self,
        inputs: &[I],
        cost: impl Fn(&I) -> u64,
        job: impl Fn(&I) -> O + Sync,
    ) -> Vec<O>
    where
        I: Sync,
        O: Send,
    {
        self.run_hinted_observed(inputs, cost, job, |_| {})
    }

    /// [`ExperimentPlan::run_hinted`] with a claim probe: `on_claim(i)`
    /// fires under the claim lock, in claim order, as each input index
    /// is taken by a worker. This is the observation seam the scheduling
    /// tests use; `|_| {}` makes it free.
    pub fn run_hinted_observed<I, O>(
        &self,
        inputs: &[I],
        cost: impl Fn(&I) -> u64,
        job: impl Fn(&I) -> O + Sync,
        on_claim: impl Fn(usize) + Sync,
    ) -> Vec<O>
    where
        I: Sync,
        O: Send,
    {
        let costs: Vec<u64> = inputs.iter().map(cost).collect();
        self.run_ordered(
            inputs,
            &largest_first_order(&costs),
            Some(&costs),
            |i| (job(i), JobTelemetry::default()),
            on_claim,
        )
    }

    /// [`ExperimentPlan::run_hinted`] for jobs that also sample their
    /// counters: the job returns `(output, Option<Snapshot>)`, and the
    /// snapshot rides on the job's [`JobSpan`] when a run log is
    /// attached (it is dropped otherwise). Outputs are merged exactly
    /// as in the other runners.
    pub fn run_probed<I, O>(
        &self,
        inputs: &[I],
        cost: impl Fn(&I) -> u64,
        job: impl Fn(&I) -> (O, Option<Snapshot>) + Sync,
    ) -> Vec<O>
    where
        I: Sync,
        O: Send,
    {
        let costs: Vec<u64> = inputs.iter().map(cost).collect();
        self.run_ordered(
            inputs,
            &largest_first_order(&costs),
            Some(&costs),
            |i| {
                let (out, counters) = job(i);
                (out, JobTelemetry::counters(counters))
            },
            |_| {},
        )
    }

    /// [`ExperimentPlan::run_probed`] for jobs that also capture interval
    /// series and latency histograms: the job returns
    /// `(output, JobTelemetry)`, and everything in the telemetry lands
    /// in the run log under the job's `(run, id)` — spans, `interval`
    /// records and `hist` records — while outputs merge exactly as in
    /// the other runners (telemetry is dropped when no log is attached).
    pub fn run_telemetry<I, O>(
        &self,
        inputs: &[I],
        cost: impl Fn(&I) -> u64,
        job: impl Fn(&I) -> (O, JobTelemetry) + Sync,
    ) -> Vec<O>
    where
        I: Sync,
        O: Send,
    {
        let costs: Vec<u64> = inputs.iter().map(cost).collect();
        self.run_ordered(
            inputs,
            &largest_first_order(&costs),
            Some(&costs),
            job,
            |_| {},
        )
    }

    /// The shared engine: claims inputs in `order`, writes outputs into
    /// their input-order slots. Jobs return `(output, telemetry)`; the
    /// telemetry goes to the run log (if any), never into a slot.
    fn run_ordered<I, O>(
        &self,
        inputs: &[I],
        order: &[usize],
        costs: Option<&[u64]>,
        job: impl Fn(&I) -> (O, JobTelemetry) + Sync,
        on_claim: impl Fn(usize) + Sync,
    ) -> Vec<O>
    where
        I: Sync,
        O: Send,
    {
        debug_assert_eq!(order.len(), inputs.len());
        let run = self.log.as_ref().map(|b| {
            b.log.begin_run(RunMeta {
                tag: b.tag.clone(),
                effort: self.effort.name().to_string(),
                threads: self.threads,
                jobs: inputs.len(),
            })
        });
        // Telemetry emission: called on whichever thread finished the
        // job, after the output is produced but independent of the slot
        // writes the merge reads from.
        let emit = |id: usize, worker: usize, claim: usize, wall: f64, tele: JobTelemetry| {
            let (Some(binding), Some(run)) = (&self.log, run) else {
                return;
            };
            binding.log.record_span(JobSpan {
                run,
                id,
                label: self.job_labels.as_ref().and_then(|l| l.get(id).cloned()),
                worker,
                claim,
                cost_hint: costs.map(|c| c[id]),
                wall_secs: wall,
                counters: tele.counters,
            });
            binding
                .log
                .record_intervals(tele.intervals.into_iter().map(|s| IntervalRecord {
                    run,
                    id,
                    seq: s.seq,
                    start: s.start,
                    end: s.end,
                    gc: s.gc,
                    counters: s.counters,
                }));
            for (name, hist) in tele.hists {
                binding.log.record_hist(HistRecord {
                    run,
                    id,
                    name,
                    hist,
                });
            }
            binding
                .log
                .record_sample_units(tele.samples.into_iter().map(|mut r| {
                    r.run = run;
                    r.id = id;
                    r
                }));
            binding
                .log
                .record_events(tele.events.into_iter().map(|mut r| {
                    r.run = run;
                    r.id = id;
                    r
                }));
            binding
                .log
                .record_attribs(tele.attribs.into_iter().map(|mut r| {
                    r.run = run;
                    r.id = id;
                    r
                }));
        };
        if self.threads <= 1 || inputs.len() <= 1 {
            let mut slots: Vec<Option<O>> = inputs.iter().map(|_| None).collect();
            for (claim, &i) in order.iter().enumerate() {
                on_claim(i);
                let started = Instant::now();
                let (out, tele) = job(&inputs[i]);
                emit(i, 0, claim, started.elapsed().as_secs_f64(), tele);
                slots[i] = Some(out);
            }
            return slots
                .into_iter()
                .map(|s| s.expect("order visits every input"))
                .collect();
        }
        // The claim counter is a mutex, not an atomic, so that claiming
        // and observing are one step: the probe sees exactly the order
        // jobs were handed out in. Claims are vastly rarer than the
        // simulated work inside each job, so contention is irrelevant.
        let next = Mutex::new(0usize);
        let slots: Vec<Mutex<Option<O>>> = inputs.iter().map(|_| Mutex::new(None)).collect();
        let workers = self.threads.min(inputs.len());
        std::thread::scope(|s| {
            for worker in 0..workers {
                let emit = &emit;
                let job = &job;
                let on_claim = &on_claim;
                let next = &next;
                let slots = &slots;
                s.spawn(move || loop {
                    let claimed = {
                        let mut n = next.lock().expect("claim counter poisoned");
                        if *n >= order.len() {
                            None
                        } else {
                            let claim = *n;
                            let i = order[claim];
                            *n += 1;
                            on_claim(i);
                            Some((i, claim))
                        }
                    };
                    let Some((i, claim)) = claimed else { break };
                    let started = Instant::now();
                    let (out, tele) = job(&inputs[i]);
                    emit(i, worker, claim, started.elapsed().as_secs_f64(), tele);
                    *slots[i].lock().expect("result slot poisoned") = Some(out);
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("result slot poisoned")
                    .expect("worker filled every claimed slot")
            })
            .collect()
    }

    /// Seeds this plan replicates over: the effort's seed count in full
    /// mode, a single seed in sampled mode — there the within-run
    /// stratified confidence interval replaces seed replication as the
    /// variability estimate, and dropping the replicas is where most of
    /// the sampled wall-clock win at a fixed effort comes from.
    pub fn seeds(&self) -> u64 {
        if self.mode.is_sampled() {
            1
        } else {
            self.effort.seeds()
        }
    }

    /// Runs `metric` once per seed (`0..self.seeds()`) in parallel and
    /// summarizes in seed order (mean ± σ, the per-point recipe for every
    /// figure with error bars).
    pub fn run_seeds(&self, metric: impl Fn(u64) -> f64 + Sync) -> Summary {
        let seeds: Vec<u64> = (0..self.seeds()).collect();
        let values = self.run(&seeds, |&s| metric(s));
        let mut summary = Summary::new();
        for v in values {
            summary.push(v);
        }
        summary
    }

    /// Builds a machine per seed, measures one window each (in parallel,
    /// honoring the plan's [`SimMode`]), and summarizes `metric` of the
    /// reports in seed order.
    pub fn measure_seeds<W, B, M>(&self, build: B, metric: M) -> Summary
    where
        W: Workload,
        B: Fn(u64) -> Machine<W> + Sync,
        M: Fn(&WindowReport, &Machine<W>) -> f64 + Sync,
    {
        let effort = self.effort;
        let mode = self.mode.clone();
        self.run_seeds(|seed| {
            let mut m = build(seed);
            let (report, _) = measure_in(&mut m, effort, &mode);
            metric(&report, &m)
        })
    }

    /// Builds a machine per seed and returns each seed's window report,
    /// in seed order (honoring the plan's [`SimMode`]).
    pub fn measure_reports<W, B>(&self, build: B) -> Vec<WindowReport>
    where
        W: Workload,
        B: Fn(u64) -> Machine<W> + Sync,
    {
        let effort = self.effort;
        let mode = self.mode.clone();
        let seeds: Vec<u64> = (0..self.seeds()).collect();
        self.run(&seeds, |&seed| {
            let mut m = build(seed);
            measure_in(&mut m, effort, &mode).0
        })
    }
}

/// Builds a SPECjbb machine: `warehouses` threads bound to `pset`
/// processors of a 16-way E6000.
pub fn jbb_machine(pset: usize, warehouses: usize, seed: u64, effort: Effort) -> Machine<SpecJbb> {
    let cfg = SpecJbbConfig::scaled(warehouses, effort.scale_divisor());
    jbb_machine_with(pset, cfg, seed)
}

/// Builds a SPECjbb machine from an explicit workload configuration.
pub fn jbb_machine_with(pset: usize, cfg: SpecJbbConfig, seed: u64) -> Machine<SpecJbb> {
    let region = AddrRange::new(Addr(WORKLOAD_BASE), cfg.required_bytes());
    let wl = SpecJbb::new(cfg, region);
    let mut mc = MachineConfig::e6000(pset);
    mc.seed = seed;
    Machine::new(mc, wl)
}

/// Builds an ECperf application-server machine: the thread pool is tuned
/// to the processor count (as the paper tunes per configuration).
pub fn ecperf_machine(pset: usize, seed: u64, effort: Effort) -> Machine<Ecperf> {
    let mut cfg = EcperfConfig::scaled(10, effort.scale_divisor());
    cfg.threads = (pset * 6).clamp(12, 96);
    cfg.db_connections = (cfg.threads as u32 / 2).max(2);
    ecperf_machine_with(pset, cfg, seed)
}

/// Builds an ECperf machine from an explicit workload configuration.
pub fn ecperf_machine_with(pset: usize, cfg: EcperfConfig, seed: u64) -> Machine<Ecperf> {
    let region = AddrRange::new(Addr(WORKLOAD_BASE), cfg.required_bytes());
    let wl = Ecperf::new(cfg, region);
    let mut mc = MachineConfig::e6000(pset);
    mc.seed = seed;
    Machine::new(mc, wl)
}

/// Warm up, measure one window, and return the report.
pub fn measure<W: Workload>(machine: &mut Machine<W>, effort: Effort) -> WindowReport {
    machine.run_until(effort.warmup());
    machine.begin_measurement();
    let start = machine.time();
    machine.run_until(start + effort.window());
    machine.window_report()
}

/// [`measure`] under an explicit [`SimMode`]: in `Full` the report is
/// the machine's own; in `Sampled` the warm-up fast-forwards, only the
/// signature-picked units run in detail, and the report's timing fields
/// are the extrapolated estimates (the [`SampledRun`] rides along for
/// CIs and the unit schedule). The machine must be freshly built.
pub fn measure_in<W: Workload>(
    machine: &mut Machine<W>,
    effort: Effort,
    mode: &SimMode,
) -> (WindowReport, Option<SampledRun>) {
    match mode {
        SimMode::Full => (measure(machine, effort), None),
        SimMode::Sampled(cfg) => {
            let run = measure_sampled(machine, effort.warmup(), effort.window(), cfg);
            (run.to_window_report(), Some(run))
        }
    }
}

/// Runs `build` once per seed, measuring `metric` of the window report,
/// and summarizes (mean ± σ). Convenience wrapper over
/// [`ExperimentPlan::measure_seeds`] with a core-per-worker plan.
pub fn measure_seeds<W, B, M>(effort: Effort, build: B, metric: M) -> Summary
where
    W: Workload,
    B: Fn(u64) -> Machine<W> + Sync,
    M: Fn(&WindowReport, &Machine<W>) -> f64 + Sync,
{
    ExperimentPlan::new(effort).measure_seeds(build, metric)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn effort_levels_are_ordered() {
        assert!(Effort::Quick.window() < Effort::Standard.window());
        assert!(Effort::Standard.window() < Effort::Full.window());
        assert!(Effort::Quick.seeds() <= Effort::Full.seeds());
    }

    #[test]
    fn measure_seeds_aggregates() {
        let s = measure_seeds(
            Effort::Quick,
            |seed| jbb_machine(1, 2, seed, Effort::Quick),
            |r, _| r.transactions as f64,
        );
        assert_eq!(s.n(), 1);
        assert!(s.mean() > 0.0);
    }

    #[test]
    fn plan_preserves_input_order_at_any_thread_count() {
        let inputs: Vec<u64> = (0..64).collect();
        let serial = ExperimentPlan::serial(Effort::Quick).run(&inputs, |&x| x * x);
        for threads in [2, 4, 7] {
            let parallel = ExperimentPlan::serial(Effort::Quick)
                .with_threads(threads)
                .run(&inputs, |&x| x * x);
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn plan_uses_multiple_workers() {
        let ids = Mutex::new(HashSet::new());
        let inputs: Vec<u64> = (0..16).collect();
        ExperimentPlan::serial(Effort::Quick)
            .with_threads(4)
            .run(&inputs, |_| {
                ids.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(std::time::Duration::from_millis(5));
            });
        assert!(
            ids.lock().unwrap().len() >= 2,
            "expected at least two distinct worker threads"
        );
    }

    #[test]
    fn largest_first_order_sorts_by_cost_then_input_position() {
        assert_eq!(largest_first_order(&[3, 50, 1, 50, 2]), vec![1, 3, 0, 4, 2]);
        assert_eq!(largest_first_order(&[]), Vec::<usize>::new());
    }

    #[test]
    fn hinted_run_matches_plain_run_bit_for_bit() {
        let inputs: Vec<u64> = (0..32).collect();
        let plain = ExperimentPlan::serial(Effort::Quick).run(&inputs, |&x| (x as f64).sqrt());
        for threads in [1, 3, 5] {
            let hinted = ExperimentPlan::serial(Effort::Quick)
                .with_threads(threads)
                .run_hinted(&inputs, |&x| x, |&x| (x as f64).sqrt());
            let same = plain
                .iter()
                .zip(&hinted)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "hinted diverged at {threads} threads");
        }
    }

    #[test]
    fn hinted_claims_go_largest_first_at_any_worker_count() {
        let jobs: Vec<(usize, u64)> = [3u64, 50, 1, 40, 2].iter().copied().enumerate().collect();
        for threads in [1, 2, 4] {
            let claims = Mutex::new(Vec::new());
            let out = ExperimentPlan::serial(Effort::Quick)
                .with_threads(threads)
                .run_hinted_observed(
                    &jobs,
                    |&(_, c)| c,
                    |&(i, _)| i,
                    |i| claims.lock().unwrap().push(i),
                );
            // Outputs merge in input order regardless of claim order.
            assert_eq!(out, vec![0, 1, 2, 3, 4], "threads={threads}");
            // Claims went out largest-cost first.
            assert_eq!(
                claims.into_inner().unwrap(),
                vec![1, 3, 0, 4, 2],
                "threads={threads}"
            );
        }
    }

    #[test]
    fn attached_log_records_all_spans_without_changing_outputs() {
        let inputs: Vec<u64> = (0..12).collect();
        let bare = ExperimentPlan::serial(Effort::Quick)
            .with_threads(3)
            .run_hinted(&inputs, |&x| x, |&x| x * 3);

        let log = Arc::new(RunLog::new());
        let plan = ExperimentPlan::serial(Effort::Quick)
            .with_threads(3)
            .with_run_log(Arc::clone(&log), "test")
            .with_job_labels(inputs.iter().map(|x| format!("job-{x}")).collect());
        let logged = plan.run_hinted(&inputs, |&x| x, |&x| x * 3);
        assert_eq!(bare, logged);
        assert_eq!(log.run_count(), 1);
        assert_eq!(log.span_count(), inputs.len());

        // Probed runs attach snapshots; outputs still merge identically.
        let probed = plan.run_probed(&inputs, |&x| x, |&x| (x * 3, None));
        assert_eq!(bare, probed);
        assert_eq!(log.run_count(), 2);
        assert_eq!(log.span_count(), 2 * inputs.len());

        let jsonl = log.to_jsonl(&probes::Provenance {
            git_rev: "test".into(),
            hostname: "test".into(),
            cpu_count: 1,
            timestamp: 0,
            workers: None,
            effort: None,
            sim_mode: None,
        });
        let parsed = probes::report::check(&jsonl).expect("runner emits schema-valid JSONL");
        assert_eq!(parsed.jobs.len(), 2 * inputs.len());
        assert!(parsed.jobs.iter().all(|j| j.cost_hint.is_some()));
        assert_eq!(parsed.jobs[0].label.as_deref(), Some("job-11"));
    }

    #[test]
    fn run_telemetry_streams_intervals_and_hists_into_log() {
        struct Tick(u64);
        impl probes::registry::CounterSet for Tick {
            fn descriptors(&self) -> &'static [probes::registry::CounterDesc] {
                const D: &[probes::registry::CounterDesc] = &[probes::registry::CounterDesc::new(
                    "tick.n",
                    probes::registry::CounterKind::Count,
                )];
                D
            }
            fn values(&self, out: &mut Vec<u64>) {
                out.push(self.0);
            }
        }

        let job = |&x: &u64| {
            let mut hist = Histogram::new();
            hist.record(x + 1);
            let tele = JobTelemetry {
                counters: Some(Snapshot::of(&Tick(x))),
                intervals: vec![
                    crate::engine::IntervalSample {
                        seq: 0,
                        start: 0,
                        end: 100,
                        gc: false,
                        counters: Snapshot::of(&Tick(x)),
                    },
                    crate::engine::IntervalSample {
                        seq: 1,
                        start: 100,
                        end: 200,
                        gc: true,
                        counters: Snapshot::of(&Tick(x * 2)),
                    },
                ],
                hists: vec![("mem.latency".to_string(), hist)],
                samples: vec![SampleUnitRecord {
                    run: 0,
                    id: 0,
                    unit: 0,
                    cluster: 0,
                    start: 0,
                    end: 200,
                    detailed: true,
                    weight_ppm: 1_000_000,
                }],
                events: vec![probes::runlog::EventRecord {
                    run: 0,
                    id: 0,
                    name: "gc.pause".to_string(),
                    start: 100,
                    end: 160,
                }],
                attribs: vec![AttribRecord {
                    run: 0,
                    id: 0,
                    stack: "mutator;data_stall;memory;eden".to_string(),
                    cycles: x + 1,
                }],
            };
            (x * 7, tele)
        };

        let inputs: Vec<u64> = (0..6).collect();
        let bare = ExperimentPlan::serial(Effort::Quick).run(&inputs, |i| job(i).0);
        assert_eq!(bare, vec![0, 7, 14, 21, 28, 35]);

        for threads in [1, 3] {
            let log = Arc::new(RunLog::new());
            let logged = ExperimentPlan::serial(Effort::Quick)
                .with_threads(threads)
                .with_run_log(Arc::clone(&log), "test")
                .run_telemetry(&inputs, |&x| x, job);
            assert_eq!(bare, logged, "threads={threads}");
            assert_eq!(log.span_count(), inputs.len());
            assert_eq!(log.interval_count(), 2 * inputs.len());
            assert_eq!(log.hist_count(), inputs.len());

            let jsonl = log.to_jsonl(&probes::Provenance {
                git_rev: "test".into(),
                hostname: "test".into(),
                cpu_count: 1,
                timestamp: 0,
                workers: None,
                effort: None,
                sim_mode: None,
            });
            let parsed = probes::report::check(&jsonl).expect("telemetry JSONL passes --check");
            assert_eq!(parsed.intervals.len(), 2 * inputs.len());
            assert_eq!(parsed.hists.len(), inputs.len());
            // Event records were stamped with the real run/id.
            assert_eq!(parsed.events.len(), inputs.len());
            assert!(parsed
                .events
                .iter()
                .all(|e| e.name == "gc.pause" && e.id < inputs.len() as u64));
            // Attribution records were stamped the same way.
            assert_eq!(parsed.attribs.len(), inputs.len());
            assert!(parsed
                .attribs
                .iter()
                .all(|a| a.stack.starts_with("mutator;") && a.id < inputs.len() as u64));
        }
    }

    #[test]
    fn run_seeds_matches_serial_summary() {
        let plan = ExperimentPlan::serial(Effort::Quick).with_threads(3);
        // Effort::Quick has 1 seed; use run directly for a multi-value check.
        let vals = plan.run(&[0u64, 1, 2, 3, 4], |&s| (s as f64).sqrt());
        let mut expect = Summary::new();
        let mut got = Summary::new();
        for (i, v) in vals.iter().enumerate() {
            got.push(*v);
            expect.push((i as f64).sqrt());
        }
        assert_eq!(expect.mean().to_bits(), got.mean().to_bits());
    }
}
