//! Experiment orchestration: workload factories, warm-up/measurement
//! windows, the multi-seed variability methodology, and the parallel
//! [`ExperimentPlan`] runner all figure experiments fan out through.
//!
//! Every figure experiment follows the paper's protocol: build the
//! workload, warm it up (caches, JIT, bean cache, steady-state heap),
//! reset all statistics, measure a window, and repeat across seeds to get
//! means and error bars (Section 3.3).
//!
//! Runs at different seeds or configurations never share state — each
//! builds its own machine and RNG — so the plan can fan them across a
//! worker pool and still produce *bit-identical* results to a serial run:
//! outputs are merged in input order, and every floating-point reduction
//! happens after the merge.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use memsys::{Addr, AddrRange};
use simstats::Summary;
use workloads::ecperf::{Ecperf, EcperfConfig};
use workloads::model::Workload;
use workloads::specjbb::{SpecJbb, SpecJbbConfig};

use crate::engine::{Machine, MachineConfig, WindowReport};

/// Base address of the workload's memory region: above the engine's
/// reserved kernel-tick lines, below nothing else.
pub const WORKLOAD_BASE: u64 = 0x2000_0000;

/// How hard an experiment works: `Quick` for tests and smoke runs,
/// `Standard` for the bench harness, `Full` for paper-strength windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Short windows, 1 seed.
    Quick,
    /// Medium windows, 3 seeds (bench default).
    Standard,
    /// Long windows, 5 seeds.
    Full,
}

impl Effort {
    /// Warm-up length in cycles.
    pub fn warmup(self) -> u64 {
        match self {
            Effort::Quick => 15_000_000,
            Effort::Standard => 40_000_000,
            Effort::Full => 120_000_000,
        }
    }

    /// Measurement-window length in cycles.
    pub fn window(self) -> u64 {
        match self {
            Effort::Quick => 40_000_000,
            Effort::Standard => 120_000_000,
            Effort::Full => 400_000_000,
        }
    }

    /// Seeds per configuration (the Alameldeen–Wood methodology).
    pub fn seeds(self) -> u64 {
        match self {
            Effort::Quick => 1,
            Effort::Standard => 3,
            Effort::Full => 5,
        }
    }

    /// Heap/database scale divisor for reference-driven runs.
    pub fn scale_divisor(self) -> u64 {
        match self {
            Effort::Quick => 32,
            Effort::Standard => 16,
            Effort::Full => 8,
        }
    }
}

/// A parallel experiment runner: fans independent simulation jobs (seeds
/// × configurations) over a pool of `std::thread` workers and merges
/// their results in input order.
///
/// Determinism contract: for the same inputs and job function, the
/// returned vector is identical whatever the thread count — including
/// `1`, which runs inline with no pool at all. Jobs must therefore be
/// pure functions of their input (every machine builder in this module
/// is: the seed fully determines the run).
#[derive(Debug, Clone, Copy)]
pub struct ExperimentPlan {
    effort: Effort,
    threads: usize,
}

impl ExperimentPlan {
    /// A plan running at `effort` with one worker per available core.
    pub fn new(effort: Effort) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ExperimentPlan { effort, threads }
    }

    /// A strictly serial plan (no worker pool).
    pub fn serial(effort: Effort) -> Self {
        ExperimentPlan { effort, threads: 1 }
    }

    /// The same plan with an explicit worker count (min 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The plan's effort level.
    pub fn effort(&self) -> Effort {
        self.effort
    }

    /// The plan's worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `job` over every input, returning outputs in input order.
    ///
    /// With more than one worker, inputs are claimed from a shared
    /// counter (work stealing by index), so long and short jobs pack
    /// tightly; each output lands in its input's slot, which is what
    /// makes the merge order — and therefore every downstream
    /// floating-point reduction — independent of scheduling.
    pub fn run<I, O>(&self, inputs: &[I], job: impl Fn(&I) -> O + Sync) -> Vec<O>
    where
        I: Sync,
        O: Send,
    {
        if self.threads <= 1 || inputs.len() <= 1 {
            return inputs.iter().map(job).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<O>>> = inputs.iter().map(|_| Mutex::new(None)).collect();
        let workers = self.threads.min(inputs.len());
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= inputs.len() {
                        break;
                    }
                    let out = job(&inputs[i]);
                    *slots[i].lock().expect("result slot poisoned") = Some(out);
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("result slot poisoned")
                    .expect("worker filled every claimed slot")
            })
            .collect()
    }

    /// Runs `metric` once per seed (`0..effort.seeds()`) in parallel and
    /// summarizes in seed order (mean ± σ, the per-point recipe for every
    /// figure with error bars).
    pub fn run_seeds(&self, metric: impl Fn(u64) -> f64 + Sync) -> Summary {
        let seeds: Vec<u64> = (0..self.effort.seeds()).collect();
        let values = self.run(&seeds, |&s| metric(s));
        let mut summary = Summary::new();
        for v in values {
            summary.push(v);
        }
        summary
    }

    /// Builds a machine per seed, measures one window each (in parallel),
    /// and summarizes `metric` of the reports in seed order.
    pub fn measure_seeds<W, B, M>(&self, build: B, metric: M) -> Summary
    where
        W: Workload,
        B: Fn(u64) -> Machine<W> + Sync,
        M: Fn(&WindowReport, &Machine<W>) -> f64 + Sync,
    {
        let effort = self.effort;
        self.run_seeds(|seed| {
            let mut m = build(seed);
            let report = measure(&mut m, effort);
            metric(&report, &m)
        })
    }

    /// Builds a machine per seed and returns each seed's window report,
    /// in seed order.
    pub fn measure_reports<W, B>(&self, build: B) -> Vec<WindowReport>
    where
        W: Workload,
        B: Fn(u64) -> Machine<W> + Sync,
    {
        let effort = self.effort;
        let seeds: Vec<u64> = (0..effort.seeds()).collect();
        self.run(&seeds, |&seed| {
            let mut m = build(seed);
            measure(&mut m, effort)
        })
    }
}

/// Builds a SPECjbb machine: `warehouses` threads bound to `pset`
/// processors of a 16-way E6000.
pub fn jbb_machine(pset: usize, warehouses: usize, seed: u64, effort: Effort) -> Machine<SpecJbb> {
    let cfg = SpecJbbConfig::scaled(warehouses, effort.scale_divisor());
    jbb_machine_with(pset, cfg, seed)
}

/// Builds a SPECjbb machine from an explicit workload configuration.
pub fn jbb_machine_with(pset: usize, cfg: SpecJbbConfig, seed: u64) -> Machine<SpecJbb> {
    let region = AddrRange::new(Addr(WORKLOAD_BASE), cfg.required_bytes());
    let wl = SpecJbb::new(cfg, region);
    let mut mc = MachineConfig::e6000(pset);
    mc.seed = seed;
    Machine::new(mc, wl)
}

/// Builds an ECperf application-server machine: the thread pool is tuned
/// to the processor count (as the paper tunes per configuration).
pub fn ecperf_machine(pset: usize, seed: u64, effort: Effort) -> Machine<Ecperf> {
    let mut cfg = EcperfConfig::scaled(10, effort.scale_divisor());
    cfg.threads = (pset * 6).clamp(12, 96);
    cfg.db_connections = (cfg.threads as u32 / 2).max(2);
    ecperf_machine_with(pset, cfg, seed)
}

/// Builds an ECperf machine from an explicit workload configuration.
pub fn ecperf_machine_with(pset: usize, cfg: EcperfConfig, seed: u64) -> Machine<Ecperf> {
    let region = AddrRange::new(Addr(WORKLOAD_BASE), cfg.required_bytes());
    let wl = Ecperf::new(cfg, region);
    let mut mc = MachineConfig::e6000(pset);
    mc.seed = seed;
    Machine::new(mc, wl)
}

/// Warm up, measure one window, and return the report.
pub fn measure<W: Workload>(machine: &mut Machine<W>, effort: Effort) -> WindowReport {
    machine.run_until(effort.warmup());
    machine.begin_measurement();
    let start = machine.time();
    machine.run_until(start + effort.window());
    machine.window_report()
}

/// Runs `build` once per seed, measuring `metric` of the window report,
/// and summarizes (mean ± σ). Convenience wrapper over
/// [`ExperimentPlan::measure_seeds`] with a core-per-worker plan.
pub fn measure_seeds<W, B, M>(effort: Effort, build: B, metric: M) -> Summary
where
    W: Workload,
    B: Fn(u64) -> Machine<W> + Sync,
    M: Fn(&WindowReport, &Machine<W>) -> f64 + Sync,
{
    ExperimentPlan::new(effort).measure_seeds(build, metric)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn effort_levels_are_ordered() {
        assert!(Effort::Quick.window() < Effort::Standard.window());
        assert!(Effort::Standard.window() < Effort::Full.window());
        assert!(Effort::Quick.seeds() <= Effort::Full.seeds());
    }

    #[test]
    fn measure_seeds_aggregates() {
        let s = measure_seeds(
            Effort::Quick,
            |seed| jbb_machine(1, 2, seed, Effort::Quick),
            |r, _| r.transactions as f64,
        );
        assert_eq!(s.n(), 1);
        assert!(s.mean() > 0.0);
    }

    #[test]
    fn plan_preserves_input_order_at_any_thread_count() {
        let inputs: Vec<u64> = (0..64).collect();
        let serial = ExperimentPlan::serial(Effort::Quick).run(&inputs, |&x| x * x);
        for threads in [2, 4, 7] {
            let parallel = ExperimentPlan::serial(Effort::Quick)
                .with_threads(threads)
                .run(&inputs, |&x| x * x);
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn plan_uses_multiple_workers() {
        let ids = Mutex::new(HashSet::new());
        let inputs: Vec<u64> = (0..16).collect();
        ExperimentPlan::serial(Effort::Quick)
            .with_threads(4)
            .run(&inputs, |_| {
                ids.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(std::time::Duration::from_millis(5));
            });
        assert!(
            ids.lock().unwrap().len() >= 2,
            "expected at least two distinct worker threads"
        );
    }

    #[test]
    fn run_seeds_matches_serial_summary() {
        let plan = ExperimentPlan::serial(Effort::Quick).with_threads(3);
        // Effort::Quick has 1 seed; use run directly for a multi-value check.
        let vals = plan.run(&[0u64, 1, 2, 3, 4], |&s| (s as f64).sqrt());
        let mut expect = Summary::new();
        let mut got = Summary::new();
        for (i, v) in vals.iter().enumerate() {
            got.push(*v);
            expect.push((i as f64).sqrt());
        }
        assert_eq!(expect.mean().to_bits(), got.mean().to_bits());
    }
}
