//! Compatibility facade: the machine now lives in the layered
//! [`crate::engine`] module (kernel / dispatch / gc_driver / accounting,
//! with observation through [`crate::engine::SimObserver`]).

pub use crate::engine::{Machine, MachineConfig, TimelineBucket, WindowReport};
