//! Compatibility facade: the machine now lives in the layered
//! [`crate::engine`] module (kernel / dispatch / gc_driver / accounting,
//! with observation through [`crate::engine::SimObserver`]).

#[deprecated(
    since = "0.2.0",
    note = "import from `crate::engine` (or the crate root) instead; this facade will be removed"
)]
pub use crate::engine::Machine;

#[deprecated(
    since = "0.2.0",
    note = "import from `crate::engine` (or the crate root) instead; this facade will be removed"
)]
pub use crate::engine::MachineConfig;

#[deprecated(
    since = "0.2.0",
    note = "import from `crate::engine` (or the crate root) instead; this facade will be removed"
)]
pub use crate::engine::TimelineBucket;

#[deprecated(
    since = "0.2.0",
    note = "import from `crate::engine` (or the crate root) instead; this facade will be removed"
)]
pub use crate::engine::WindowReport;
