//! The simulated machine: a discrete-event engine scheduling workload
//! threads over processors.
//!
//! This is the harness's equivalent of the paper's instrumented E6000 +
//! Simics setup. It owns:
//!
//! - the coherent [`MemorySystem`] and per-processor [`CpuTimer`]s;
//! - per-processor virtual clocks and `mpstat`-style [`ModeAccount`]ing;
//! - the scheduler: a `psrset` processor binding, a FIFO ready queue with
//!   weak affinity, lock management (blocking monitors idle, kernel spin
//!   mutexes burn time in their mode), I/O sleeps, and stop-the-world
//!   garbage collection on a single processor while the rest sit in
//!   GC-idle;
//! - background OS clock ticks on *every* machine processor, which touch
//!   shared kernel lines — the reason the paper sees cache-to-cache
//!   transfers even with the benchmark bound to one processor (Figure 8).

use std::collections::VecDeque;

use memsys::{AccessKind, Addr, CacheSweep, HierarchyConfig, MemSink, MemorySystem};
use rand::rngs::StdRng;
use rand::SeedableRng;
use simcpu::{CpiReport, CpuTimer, LatencyTable, PipelineParams};
use sysos::modes::{ExecMode, ModeAccount, ModeBreakdown};
use sysos::sched::ProcessorSet;
use sysos::tlb::{Tlb, TlbConfig};
use workloads::model::{Control, LockDesc, StepCtx, Workload};
use workloads::WaitKind;

/// Machine configuration.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Cache hierarchy (defaults: E6000 with 16 processors).
    pub hierarchy: HierarchyConfig,
    /// Processors the benchmark is bound to (`psrset`).
    pub pset: usize,
    /// Pipeline parameters.
    pub pipeline: PipelineParams,
    /// Memory latencies.
    pub latency: LatencyTable,
    /// Optional per-processor data TLB (the ISM ablation).
    pub tlb: Option<TlbConfig>,
    /// RNG seed for the run.
    pub seed: u64,
    /// Cycles between OS clock ticks on each processor.
    pub tick_period: u64,
    /// Busy cycles charged per tick handler.
    pub tick_cost: u64,
    /// Cycle width of one timeline bucket (Figure 10's "100 ms").
    pub timeline_bucket: u64,
    /// Scheduler time quantum in cycles (Solaris TS-class preemption).
    /// A running thread is preempted at the next step boundary once its
    /// quantum expires and another thread is ready.
    pub quantum: u64,
    /// Kernel cycles charged per context switch.
    pub ctx_switch_cost: u64,
    /// Affinity rechoose interval: a ready thread is only migrated to a
    /// foreign processor after waiting this long (Solaris
    /// `rechoose_interval`); before that, a free foreign processor lets
    /// it wait for its home processor.
    pub rechoose: u64,
}

impl MachineConfig {
    /// An E6000-like machine with the benchmark bound to `pset` of 16
    /// processors.
    ///
    /// # Panics
    ///
    /// Panics if `pset` is 0 or greater than 16.
    pub fn e6000(pset: usize) -> Self {
        MachineConfig {
            hierarchy: HierarchyConfig::e6000(16).expect("16-cpu E6000 config"),
            pset,
            pipeline: PipelineParams::default(),
            latency: LatencyTable::e6000(),
            tlb: None,
            seed: 1,
            tick_period: 250_000,
            tick_cost: 1_500,
            timeline_bucket: 24_800_000, // 100 ms at 248 MHz
            quantum: 40_000_000,         // ~160 ms (compute-bound TS threads)
            ctx_switch_cost: 3_000,
            rechoose: 0,
        }
    }

    /// Same machine but with exactly `cpus` processors (no spare OS
    /// processors) — used by the shared-cache topology experiments where
    /// the hierarchy itself is the subject.
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is zero.
    pub fn dedicated(hierarchy: HierarchyConfig) -> Self {
        let cpus = hierarchy.cpus;
        MachineConfig {
            hierarchy,
            pset: cpus,
            ..MachineConfig::e6000(1)
        }
    }
}

/// One bucket of the Figure 10 time series.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimelineBucket {
    /// Cache-to-cache transfers observed in the bucket.
    pub c2c: u64,
    /// Whether a garbage collection was active during the bucket.
    pub gc_active: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Ready,
    Running(usize),
    Blocked(u32),
    Spinning(u32, usize, ExecMode),
    Sleeping(u64),
    Done,
}

#[derive(Debug, Clone, Copy)]
struct ThreadState {
    status: Status,
    ready_at: u64,
    last_cpu: Option<usize>,
}

#[derive(Debug, Clone)]
struct LockState {
    desc: LockDesc,
    holders: u32,
    waiters: VecDeque<usize>,
}

/// A window's worth of results.
#[derive(Debug, Clone)]
pub struct WindowReport {
    /// Transactions completed in the window.
    pub transactions: u64,
    /// Window length in cycles.
    pub cycles: u64,
    /// Merged CPI report over the processor set.
    pub cpi: CpiReport,
    /// Mode breakdown over the processor set.
    pub modes: ModeBreakdown,
    /// GC time in cycles within the window.
    pub gc_cycles: u64,
    /// Number of collections in the window.
    pub gc_count: u64,
    /// Cache-to-cache / L2-miss ratio.
    pub c2c_ratio: f64,
}

impl WindowReport {
    /// Throughput in transactions per simulated second.
    pub fn throughput(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.transactions as f64 * simcpu::CLOCK_HZ as f64 / self.cycles as f64
        }
    }

    /// Throughput with GC time excluded (Figure 9's dotted lines): the
    /// collector is single-threaded, so its busy cycles *are* wall-clock
    /// stop-the-world time, subtracted from the window.
    pub fn throughput_no_gc(&self) -> f64 {
        let busy = self.cycles.saturating_sub(self.gc_cycles);
        if busy == 0 {
            0.0
        } else {
            self.transactions as f64 * simcpu::CLOCK_HZ as f64 / busy as f64
        }
    }
}

/// The simulated machine driving a workload.
pub struct Machine<W: Workload> {
    cfg: MachineConfig,
    workload: W,
    mem: MemorySystem,
    timers: Vec<CpuTimer>,
    clocks: Vec<u64>,
    modes: ModeAccount,
    pset: ProcessorSet,
    locks: Vec<LockState>,
    threads: Vec<ThreadState>,
    ready: VecDeque<usize>,
    running: Vec<Option<usize>>,
    tlbs: Option<Vec<Tlb>>,
    isweep: Option<CacheSweep>,
    dsweep: Option<CacheSweep>,
    rng: StdRng,
    next_tick: u64,
    /// Cycle at which each processor's current thread was dispatched.
    dispatched_at: Vec<u64>,
    tx_count: u64,
    gc_count: u64,
    gc_cycles: u64,
    gc_intervals: Vec<(u64, u64)>,
    timeline: Vec<TimelineBucket>,
    window_start: u64,
    window_tx: u64,
    window_gc_cycles: u64,
    window_gc_count: u64,
}

/// Sink wiring one step's references into the memory system and a CPU
/// timer, optionally through a TLB and into the Figure 10 timeline.
struct StepSink<'a> {
    mem: &'a mut MemorySystem,
    timer: &'a mut CpuTimer,
    tlb: Option<&'a mut Tlb>,
    isweep: Option<&'a mut CacheSweep>,
    dsweep: Option<&'a mut CacheSweep>,
    cpu: usize,
    timeline: &'a mut Vec<TimelineBucket>,
    bucket_cycles: u64,
    base_clock: u64,
    start_cycles: u64,
}

impl StepSink<'_> {
    #[inline]
    fn note_c2c(&mut self) {
        let now = self.base_clock + (self.timer.cycles() - self.start_cycles);
        let bucket = (now / self.bucket_cycles) as usize;
        if self.timeline.len() <= bucket {
            self.timeline.resize(bucket + 1, TimelineBucket::default());
        }
        self.timeline[bucket].c2c += 1;
    }
}

impl MemSink for StepSink<'_> {
    fn instructions(&mut self, n: u64) {
        self.timer.retire(n);
    }

    fn access(&mut self, kind: AccessKind, addr: Addr) {
        if kind.is_data() {
            if let Some(sweep) = &mut self.dsweep {
                sweep.access(addr);
            }
        } else if let Some(sweep) = &mut self.isweep {
            sweep.access(addr);
        }
        if kind.is_data() {
            if let Some(tlb) = &mut self.tlb {
                let stall = tlb.access(addr);
                if stall > 0 {
                    self.timer.stall_extra(stall);
                }
            }
        }
        let outcome = self.mem.access(self.cpu, kind, addr);
        match kind {
            AccessKind::Ifetch => self.timer.ifetch(&outcome),
            AccessKind::Load => self.timer.load(&outcome),
            AccessKind::Store => self.timer.store(&outcome),
        }
        if outcome.c2c {
            self.note_c2c();
        }
    }
}

impl<W: Workload> Machine<W> {
    /// Builds a machine around a workload.
    ///
    /// # Panics
    ///
    /// Panics if the processor set is empty or exceeds the machine size.
    pub fn new(cfg: MachineConfig, workload: W) -> Self {
        let cpus = cfg.hierarchy.cpus;
        let pset = ProcessorSet::first_n(cfg.pset, cpus);
        let locks = workload
            .lock_table()
            .into_iter()
            .map(|desc| LockState {
                desc,
                holders: 0,
                waiters: VecDeque::new(),
            })
            .collect();
        let threads = (0..workload.thread_count())
            .map(|_| ThreadState {
                status: Status::Ready,
                ready_at: 0,
                last_cpu: None,
            })
            .collect();
        Machine {
            mem: MemorySystem::new(cfg.hierarchy),
            timers: (0..cpus)
                .map(|_| CpuTimer::new(cfg.pipeline, cfg.latency))
                .collect(),
            clocks: vec![0; cpus],
            modes: ModeAccount::new(cpus),
            ready: (0..workload.thread_count()).collect(),
            running: vec![None; cpus],
            tlbs: cfg.tlb.map(|t| (0..cpus).map(|_| Tlb::new(t)).collect()),
            isweep: None,
            dsweep: None,
            rng: StdRng::seed_from_u64(cfg.seed),
            next_tick: cfg.tick_period,
            dispatched_at: vec![0; cpus],
            tx_count: 0,
            gc_count: 0,
            gc_cycles: 0,
            gc_intervals: Vec::new(),
            timeline: Vec::new(),
            window_start: 0,
            window_tx: 0,
            window_gc_cycles: 0,
            window_gc_count: 0,
            pset,
            locks,
            threads,
            workload,
            cfg,
        }
    }

    /// The workload (for inspection).
    pub fn workload(&self) -> &W {
        &self.workload
    }

    /// Mutable workload access (e.g. re-tuning between windows).
    pub fn workload_mut(&mut self) -> &mut W {
        &mut self.workload
    }

    /// The memory system (for inspection).
    pub fn memory(&self) -> &MemorySystem {
        &self.mem
    }

    /// Enables per-line communication tracking (Figures 14/15).
    pub fn enable_line_stats(&mut self) {
        self.mem.enable_line_stats();
    }

    /// Attaches instruction- and data-cache size sweeps (Figures 12/13):
    /// every reference is additionally fed to a bank of caches of varying
    /// capacity in a single pass.
    pub fn attach_sweeps(&mut self, isweep: CacheSweep, dsweep: CacheSweep) {
        self.isweep = Some(isweep);
        self.dsweep = Some(dsweep);
    }

    /// The attached instruction-cache sweep, if any.
    pub fn isweep(&self) -> Option<&CacheSweep> {
        self.isweep.as_ref()
    }

    /// The attached data-cache sweep, if any.
    pub fn dsweep(&self) -> Option<&CacheSweep> {
        self.dsweep.as_ref()
    }

    /// Current virtual time: the slowest running processor's clock (all
    /// processors' progress is bounded below by it).
    pub fn time(&self) -> u64 {
        self.running_cpus()
            .map(|c| self.clocks[c])
            .min()
            .unwrap_or_else(|| self.clocks.iter().copied().max().unwrap_or(0))
    }

    fn running_cpus(&self) -> impl Iterator<Item = usize> + '_ {
        self.running
            .iter()
            .enumerate()
            .filter_map(|(c, t)| t.map(|_| c))
    }

    /// Processors whose thread may be stepped (running, not spinning on a
    /// lock — spinners wait for their grant).
    fn steppable_cpus(&self) -> impl Iterator<Item = usize> + '_ {
        self.running.iter().enumerate().filter_map(|(c, t)| {
            t.filter(|&th| matches!(self.threads[th].status, Status::Running(_)))
                .map(|_| c)
        })
    }

    /// Completed transactions since construction.
    pub fn transactions(&self) -> u64 {
        self.tx_count
    }

    /// Collections since construction.
    pub fn gc_count(&self) -> u64 {
        self.gc_count
    }

    /// GC intervals `(start, end)` in cycles (for Figure 10's shading).
    pub fn gc_intervals(&self) -> &[(u64, u64)] {
        &self.gc_intervals
    }

    /// The Figure 10 time series: cache-to-cache transfers per bucket,
    /// with GC-active marks.
    pub fn timeline(&self) -> Vec<TimelineBucket> {
        let mut t = self.timeline.clone();
        for &(s, e) in &self.gc_intervals {
            let first = (s / self.cfg.timeline_bucket) as usize;
            let last = (e / self.cfg.timeline_bucket) as usize;
            for b in first..=last {
                if b < t.len() {
                    t[b].gc_active = true;
                }
            }
        }
        t
    }

    fn fill(&mut self, cpu: usize, to: u64, mode: ExecMode) {
        if self.clocks[cpu] < to {
            self.modes.add(cpu, mode, to - self.clocks[cpu]);
            self.clocks[cpu] = to;
        }
    }

    /// Assigns ready threads to free processors in the set, with cache
    /// affinity: a free processor first looks for a waiter that last ran
    /// on it (Solaris's dispatcher does the same; without this, every
    /// short monitor block would migrate the thread and needlessly turn
    /// its whole cache footprint into coherence traffic).
    fn dispatch(&mut self) {
        // Virtual "now" for rechoose eligibility: an idle processor's own
        // clock is stale, so compare against global progress too.
        let now_global = self
            .running_cpus()
            .map(|c| self.clocks[c])
            .min()
            .unwrap_or_else(|| self.clocks.iter().copied().max().unwrap_or(0));
        let mut progressed = true;
        while progressed && !self.ready.is_empty() {
            progressed = false;
            let free: Vec<usize> = self
                .pset
                .cpus()
                .iter()
                .copied()
                .filter(|&c| self.running[c].is_none())
                .collect();
            for cpu in free {
                if self.ready.is_empty() {
                    break;
                }
                // Anti-starvation first: once the queue head has waited a
                // full quantum it runs next, wherever. Then home
                // processor; then any thread past its rechoose interval.
                let now = self.clocks[cpu].max(now_global);
                let head_wait = now.saturating_sub(self.threads[self.ready[0]].ready_at);
                let pick = if head_wait > self.cfg.quantum {
                    Some(0)
                } else {
                    self.ready
                        .iter()
                        .position(|&t| self.threads[t].last_cpu == Some(cpu))
                        .or_else(|| {
                            self.ready.iter().position(|&t| {
                                let ts = &self.threads[t];
                                ts.last_cpu.is_none() || ts.ready_at + self.cfg.rechoose <= now
                            })
                        })
                };
                let Some(pos) = pick else { continue };
                let t = self.ready.remove(pos).expect("position valid");
                self.place(t, cpu);
                progressed = true;
            }
        }
        // Anti-livelock: if nothing at all is running but threads are
        // ready, force the head onto any free processor.
        if self.running_cpus().next().is_none() {
            if let Some(&cpu) = self
                .pset
                .cpus()
                .iter()
                .find(|&&c| self.running[c].is_none())
            {
                if let Some(t) = self.ready.pop_front() {
                    self.place(t, cpu);
                }
            }
        }
    }

    fn place(&mut self, t: usize, cpu: usize) {
        let ready_at = self.threads[t].ready_at;
        self.fill(cpu, ready_at, ExecMode::Idle);
        self.running[cpu] = Some(t);
        self.threads[t].status = Status::Running(cpu);
        self.threads[t].last_cpu = Some(cpu);
        self.dispatched_at[cpu] = self.clocks[cpu];
    }

    /// Moves due sleepers to the ready queue.
    fn wake_sleepers(&mut self, now: u64) {
        for t in 0..self.threads.len() {
            if let Status::Sleeping(until) = self.threads[t].status {
                if until <= now {
                    self.threads[t].status = Status::Ready;
                    self.threads[t].ready_at = until;
                    self.ready.push_back(t);
                }
            }
        }
    }

    fn earliest_wake(&self) -> Option<u64> {
        self.threads
            .iter()
            .filter_map(|t| match t.status {
                Status::Sleeping(until) => Some(until),
                _ => None,
            })
            .min()
    }

    /// Background OS clock tick across every machine processor: each
    /// handler dirties a per-processor line and the global run-queue /
    /// time-of-day lines (shared kernel state).
    fn os_tick(&mut self, at: u64) {
        // Kernel lines live in a reserved low region no workload uses.
        const KERNEL_GLOBALS: u64 = 0x0000_F000;
        let cpus = self.clocks.len();
        for cpu in 0..cpus {
            let o1 = self
                .mem
                .access(cpu, AccessKind::Store, Addr(KERNEL_GLOBALS));
            let o2 = self
                .mem
                .access(cpu, AccessKind::Load, Addr(KERNEL_GLOBALS + 64));
            let o3 = self.mem.access(
                cpu,
                AccessKind::Store,
                Addr(0x1_0000 + (cpu as u64) * 64),
            );
            for o in [o1, o2, o3] {
                if o.c2c {
                    let bucket = (at / self.cfg.timeline_bucket) as usize;
                    if self.timeline.len() <= bucket {
                        self.timeline.resize(bucket + 1, TimelineBucket::default());
                    }
                    self.timeline[bucket].c2c += 1;
                }
            }
            // Tick handlers interrupt whatever the cpu is doing.
            self.modes.add(cpu, ExecMode::System, self.cfg.tick_cost);
            self.clocks[cpu] += self.cfg.tick_cost;
        }
    }

    /// Runs one thread's step on `cpu`, returning whether the machine
    /// made progress.
    fn step_thread(&mut self, cpu: usize) {
        let thread = self.running[cpu].expect("step_thread on busy cpu");
        let before = self.timers[cpu].report().cycles();
        let result = {
            let mut sink = StepSink {
                mem: &mut self.mem,
                timer: &mut self.timers[cpu],
                tlb: self.tlbs.as_mut().map(|t| &mut t[cpu]),
                isweep: self.isweep.as_mut(),
                dsweep: self.dsweep.as_mut(),
                cpu,
                timeline: &mut self.timeline,
                bucket_cycles: self.cfg.timeline_bucket,
                base_clock: self.clocks[cpu],
                start_cycles: before,
            };
            let mut ctx = StepCtx {
                sink: &mut sink,
                rng: &mut self.rng,
                now: self.clocks[cpu],
            };
            self.workload.step(thread, &mut ctx)
        };
        let delta = self.timers[cpu].report().cycles() - before;
        self.modes.add(cpu, result.mode, delta);
        self.clocks[cpu] += delta;

        match result.control {
            Control::Continue => self.maybe_preempt(cpu),
            Control::TxDone => {
                self.tx_count += 1;
                self.window_tx += 1;
                self.maybe_preempt(cpu);
            }
            Control::Acquire(lock) => self.acquire(thread, cpu, lock.0, result.mode),
            Control::Release(lock) => self.release(cpu, lock.0),
            Control::IoWait(cycles) => {
                let until = self.clocks[cpu] + cycles;
                self.threads[thread].status = Status::Sleeping(until);
                self.running[cpu] = None;
            }
            Control::NeedsGc => self.run_gc(cpu),
            Control::Done => {
                self.threads[thread].status = Status::Done;
                self.running[cpu] = None;
            }
        }
    }

    /// Preempts the running thread at a step boundary once its quantum
    /// has expired and someone else is waiting for a processor. Without
    /// this, a non-blocking thread would monopolize its processor forever
    /// (and a 25-warehouse SPECjbb on one processor would degenerate to a
    /// single warehouse).
    fn maybe_preempt(&mut self, cpu: usize) {
        if self.ready.is_empty() {
            return;
        }
        if self.clocks[cpu] - self.dispatched_at[cpu] < self.cfg.quantum {
            return;
        }
        let Some(thread) = self.running[cpu] else {
            return;
        };
        self.modes.add(cpu, ExecMode::System, self.cfg.ctx_switch_cost);
        self.clocks[cpu] += self.cfg.ctx_switch_cost;
        self.threads[thread].status = Status::Ready;
        self.threads[thread].ready_at = self.clocks[cpu];
        self.ready.push_back(thread);
        self.running[cpu] = None;
    }

    fn acquire(&mut self, thread: usize, cpu: usize, lock: u32, mode: ExecMode) {
        let l = &mut self.locks[lock as usize];
        if l.holders < l.desc.capacity && l.waiters.is_empty() {
            l.holders += 1;
            return; // granted immediately; thread keeps running
        }
        let queue_len = l.waiters.len();
        l.waiters.push_back(thread);
        let spin = match l.desc.wait {
            WaitKind::Block => false,
            WaitKind::Spin => true,
            // Adaptive (HotSpot-style): spin while the queue is short —
            // the hold is brief and parking would cost a migration —
            // park once contention is real.
            WaitKind::Adaptive => queue_len < 2,
        };
        if spin {
            // The thread burns its processor until granted.
            self.threads[thread].status = Status::Spinning(lock, cpu, mode);
        } else {
            self.threads[thread].status = Status::Blocked(lock);
            self.running[cpu] = None;
        }
    }

    fn release(&mut self, cpu: usize, lock: u32) {
        let now = self.clocks[cpu];
        let mut grants = Vec::new();
        {
            let l = &mut self.locks[lock as usize];
            assert!(l.holders > 0, "release of unheld lock {lock}");
            l.holders -= 1;
            while l.holders < l.desc.capacity {
                let Some(next) = l.waiters.pop_front() else {
                    break;
                };
                l.holders += 1;
                grants.push(next);
            }
        }
        for next in grants {
            match self.threads[next].status {
                Status::Blocked(_) => {
                    self.threads[next].status = Status::Ready;
                    self.threads[next].ready_at = now;
                    self.ready.push_back(next);
                }
                Status::Spinning(_, spin_cpu, mode) => {
                    // Spinner kept its processor busy until the grant.
                    if self.clocks[spin_cpu] < now {
                        self.modes.add(spin_cpu, mode, now - self.clocks[spin_cpu]);
                        self.clocks[spin_cpu] = now;
                    }
                    self.threads[next].status = Status::Running(spin_cpu);
                }
                other => unreachable!("waiter in unexpected state {other:?}"),
            }
        }
    }

    /// Stop-the-world collection on `cpu`.
    fn run_gc(&mut self, cpu: usize) {
        // Synchronize: every benchmark processor reaches the safepoint.
        let pset_cpus: Vec<usize> = self.pset.cpus().to_vec();
        let start = pset_cpus
            .iter()
            .map(|&c| self.clocks[c])
            .max()
            .unwrap_or(self.clocks[cpu]);
        for &c in &pset_cpus {
            self.fill(c, start, ExecMode::GcIdle);
        }
        let before = self.timers[cpu].report().cycles();
        {
            let mut sink = StepSink {
                mem: &mut self.mem,
                timer: &mut self.timers[cpu],
                tlb: self.tlbs.as_mut().map(|t| &mut t[cpu]),
                isweep: self.isweep.as_mut(),
                dsweep: self.dsweep.as_mut(),
                cpu,
                timeline: &mut self.timeline,
                bucket_cycles: self.cfg.timeline_bucket,
                base_clock: start,
                start_cycles: before,
            };
            self.workload.collect(&mut sink);
        }
        let duration = self.timers[cpu].report().cycles() - before;
        self.modes.add(cpu, ExecMode::User, duration);
        self.clocks[cpu] = start + duration;
        let end = start + duration;
        // Everyone else idles while the single-threaded collector runs.
        for &c in &pset_cpus {
            if c != cpu {
                self.fill(c, end, ExecMode::GcIdle);
            }
        }
        self.gc_count += 1;
        self.gc_cycles += duration;
        self.window_gc_cycles += duration;
        self.window_gc_count += 1;
        self.gc_intervals.push((start, end));
    }

    /// Advances the machine until virtual time `horizon`.
    ///
    /// # Panics
    ///
    /// Panics on deadlock (all threads blocked with no sleeper to wake).
    pub fn run_until(&mut self, horizon: u64) {
        loop {
            self.dispatch();
            let now = self.time();
            if self.running_cpus().next().is_none() {
                // Nothing running: wake the earliest sleeper or give up.
                match self.earliest_wake() {
                    Some(wake) => {
                        self.wake_sleepers(wake);
                        self.dispatch();
                    }
                    None => {
                        assert!(
                            !self.ready.is_empty(),
                            "deadlock: no runnable, sleeping or ready thread"
                        );
                        continue;
                    }
                }
            }
            let now = self.time().max(now);
            if now >= horizon {
                break;
            }
            self.wake_sleepers(now);
            while self.next_tick <= now {
                let at = self.next_tick;
                self.os_tick(at);
                self.next_tick += self.cfg.tick_period;
            }
            // Step the slowest steppable processor (spinners wait for
            // their lock grant; stepping them would violate the
            // acquire contract).
            let Some(cpu) = self
                .steppable_cpus()
                .min_by_key(|&c| self.clocks[c])
            else {
                // Only spinners are running: their holders must be among
                // ready/sleeping threads; force progress by dispatching
                // or waking.
                match self.earliest_wake() {
                    Some(wake) => self.wake_sleepers(wake),
                    None => assert!(
                        !self.ready.is_empty(),
                        "livelock: every running thread spins and nothing can release"
                    ),
                }
                continue;
            };
            self.step_thread(cpu);
        }
        // Close the books: idle-fill every benchmark processor to the
        // horizon so mode fractions cover the whole window.
        for &c in self.pset.cpus().to_vec().iter() {
            self.fill(c, horizon, ExecMode::Idle);
        }
    }

    /// Ends the warm-up phase: resets all measured statistics while
    /// keeping caches, heap and scheduler state warm.
    pub fn begin_measurement(&mut self) {
        self.mem.reset_stats();
        for t in &mut self.timers {
            t.reset();
        }
        self.modes.reset();
        self.window_start = self.time();
        self.window_tx = 0;
        self.window_gc_cycles = 0;
        self.window_gc_count = 0;
        self.timeline.clear();
        self.gc_intervals.clear();
        if let Some(s) = &mut self.isweep {
            s.reset_stats();
        }
        if let Some(s) = &mut self.dsweep {
            s.reset_stats();
        }
    }

    /// Produces the report for the current measurement window.
    pub fn window_report(&self) -> WindowReport {
        let cycles = self.time().saturating_sub(self.window_start);
        let mut cpi = CpiReport::default();
        for &c in self.pset.cpus() {
            cpi = cpi.merge(&self.timers[c].report());
        }
        // Mode breakdown over the processor set only.
        let mut pset_modes = ModeAccount::new(self.pset.len());
        for (i, &c) in self.pset.cpus().iter().enumerate() {
            for m in sysos::modes::ALL_MODES {
                pset_modes.add(i, m, self.modes.get(c, m));
            }
        }
        WindowReport {
            transactions: self.window_tx,
            cycles,
            cpi,
            modes: pset_modes.breakdown(),
            gc_cycles: self.window_gc_cycles,
            gc_count: self.window_gc_count,
            c2c_ratio: self.mem.stats().c2c_ratio(),
        }
    }
}
