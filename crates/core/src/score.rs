//! The official SPECjbb2000 run protocol (paper Section 2.1).
//!
//! "The benchmark is run repeatedly with an increasing number of
//! warehouses until a maximum throughput is reached. The benchmark is
//! then run the same number of times with warehouse values starting at
//! the maximum and increasing to twice that value. Therefore, if the best
//! throughput for a system comes with n warehouses, 2n runs are made.
//! The benchmark score is the average of runs from n to 2n warehouses."
//!
//! The paper skipped this protocol in simulation (prohibitively many
//! runs) and picked representative warehouse counts; this module
//! implements the full protocol so the repository can report an official
//!-style score, and so the "optimal warehouses per system size" choice
//! used by the scaling figures is grounded rather than assumed.
//!
//! The protocol is inherently sequential — whether to run warehouse
//! count w+1 depends on w's throughput — but every point is a pure
//! function of its warehouse count, so the ramp runs as *speculative
//! rounds* on the [`ExperimentPlan`]: each round fans a batch of
//! warehouse points across the worker pool, the peak rule is applied to
//! the order-preserved merge, and any speculative points past the stop
//! are either discarded (the reported ramp is exactly the serial ramp)
//! or reused when they fall inside the scored n..2n region.

use simstats::{fnum, Table};

use crate::experiment::{jbb_machine, measure, ExperimentPlan};
use crate::Effort;

/// Relative drop below the running maximum that counts as a real
/// decline. A plateau or single noisy non-increase within this tolerance
/// continues the ramp instead of declaring a premature peak.
pub const RAMP_TOLERANCE: f64 = 0.02;

/// One warehouse point of a ramp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RampPoint {
    /// Warehouses (= threads).
    pub warehouses: usize,
    /// Throughput in transactions per second.
    pub throughput: f64,
}

/// A complete official-style run.
#[derive(Debug, Clone, PartialEq)]
pub struct JbbScore {
    /// The ascending ramp up to (and including) the point that ended it.
    pub ramp: Vec<RampPoint>,
    /// The scored runs from `n` to `2n` warehouses.
    pub scored: Vec<RampPoint>,
    /// The peak warehouse count `n`.
    pub peak_warehouses: usize,
    /// The SPECjbb-style score: mean throughput over `n..=2n`.
    pub score: f64,
}

/// Index of the first point that ends the ramp: the first throughput
/// more than [`RAMP_TOLERANCE`] below the running maximum. `None` while
/// the ramp is still ascending (or plateauing within tolerance).
fn ramp_stop(tputs: &[f64]) -> Option<usize> {
    let mut best = f64::NEG_INFINITY;
    for (i, &t) in tputs.iter().enumerate() {
        if t < best * (1.0 - RAMP_TOLERANCE) {
            return Some(i);
        }
        if t > best {
            best = t;
        }
    }
    None
}

/// The peak warehouse count: first index of the maximum, plus one
/// (warehouse counts are 1-based). Defaults to 1 on an empty ramp.
fn peak_of(tputs: &[f64]) -> usize {
    let mut best = f64::NEG_INFINITY;
    let mut n = 1;
    for (i, &t) in tputs.iter().enumerate() {
        if t > best {
            best = t;
            n = i + 1;
        }
    }
    n
}

/// Runs the official protocol on `pset` processors with a
/// core-per-worker plan at `effort`.
///
/// The ramp ascends one warehouse at a time until throughput drops more
/// than [`RAMP_TOLERANCE`] below its running maximum (bounded by
/// `max_warehouses` as a safety net).
pub fn official_run(pset: usize, max_warehouses: usize, effort: Effort) -> JbbScore {
    official_run_with(&ExperimentPlan::new(effort), pset, max_warehouses)
}

/// Runs the official protocol on `pset` processors over `plan`'s worker
/// pool. The result is bit-identical to a serial ramp at any worker
/// count: speculative rounds only ever *add* points past the serial
/// stopping rule, and those are trimmed from the ramp (reused, when
/// they land in the scored region — every point is a pure function of
/// its warehouse count).
pub fn official_run_with(plan: &ExperimentPlan, pset: usize, max_warehouses: usize) -> JbbScore {
    let effort = plan.effort();
    run_protocol(plan, max_warehouses, |w| {
        let mut m = jbb_machine(pset, w, 1, effort);
        measure(&mut m, effort).throughput()
    })
}

/// The protocol against an arbitrary throughput function — separated so
/// the ramp/peak/score logic is testable on synthetic curves without
/// simulating. `tput(w)` must be a pure function of `w`.
pub(crate) fn run_protocol(
    plan: &ExperimentPlan,
    max_warehouses: usize,
    tput: impl Fn(usize) -> f64 + Sync,
) -> JbbScore {
    let max_warehouses = max_warehouses.max(1);
    // tputs[i] is the throughput at i+1 warehouses; grows by speculative
    // rounds of one batch per worker.
    let mut tputs: Vec<f64> = Vec::new();
    let batch = plan.threads().max(1);
    let mut stop = None;
    while stop.is_none() && tputs.len() < max_warehouses {
        let from = tputs.len() + 1;
        let to = (from + batch - 1).min(max_warehouses);
        let ws: Vec<usize> = (from..=to).collect();
        tputs.extend(plan.run_hinted(&ws, |&w| w as u64, |&w| tput(w)));
        stop = ramp_stop(&tputs);
    }
    // The serial ramp: everything up to and including the stopping
    // point. Speculative extras stay in `tputs` for reuse below.
    let ramp_len = stop.map(|i| i + 1).unwrap_or(tputs.len());
    let ramp: Vec<RampPoint> = tputs[..ramp_len]
        .iter()
        .enumerate()
        .map(|(i, &t)| RampPoint {
            warehouses: i + 1,
            throughput: t,
        })
        .collect();
    let n = peak_of(&tputs[..ramp_len]);
    // The scored region n..=2n, reusing ramp and speculative points.
    let missing: Vec<usize> = (n..=2 * n).filter(|&w| w > tputs.len()).collect();
    let extra = plan.run_hinted(&missing, |&w| w as u64, |&w| tput(w));
    let scored: Vec<RampPoint> = (n..=2 * n)
        .map(|w| RampPoint {
            warehouses: w,
            throughput: if w <= tputs.len() {
                tputs[w - 1]
            } else {
                extra[missing.binary_search(&w).expect("missing point computed")]
            },
        })
        .collect();
    let score = scored.iter().map(|p| p.throughput).sum::<f64>() / scored.len() as f64;
    JbbScore {
        ramp,
        scored,
        peak_warehouses: n,
        score,
    }
}

impl JbbScore {
    /// Renders the ramp and the scored region.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "SPECjbb official run protocol (peak n = {}, score = {:.0} tx/s)",
                self.peak_warehouses, self.score
            ),
            &["warehouses", "throughput", "scored"],
        );
        for p in &self.ramp {
            let scored = self.scored.iter().any(|s| s.warehouses == p.warehouses);
            t.row(&[
                p.warehouses.to_string(),
                fnum(p.throughput),
                if scored { "*".into() } else { String::new() },
            ]);
        }
        for p in &self.scored {
            if !self.ramp.iter().any(|r| r.warehouses == p.warehouses) {
                t.row(&[p.warehouses.to_string(), fnum(p.throughput), "*".into()]);
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic curve with a noisy dip before the real peak and a
    /// plateau at the top — the case the old single-non-increase rule
    /// aborted on.
    fn plateaued(w: usize) -> f64 {
        match w {
            1 => 100.0,
            2 => 108.0,
            3 => 107.0, // within tolerance of 108: noise, not the peak
            4 => 110.0, // the real peak
            5 => 110.0, // exact plateau
            6 => 104.0, // first real drop (> 2% below 110)
            _ => 90.0 - w as f64,
        }
    }

    #[test]
    fn official_run_finds_a_peak_and_scores_n_to_2n() {
        let s = official_run(2, 6, Effort::Quick);
        assert!(s.peak_warehouses >= 1);
        assert_eq!(s.scored.len(), s.peak_warehouses + 1);
        assert!(s.score > 0.0);
        assert_eq!(s.scored.first().unwrap().warehouses, s.peak_warehouses);
        assert_eq!(s.scored.last().unwrap().warehouses, 2 * s.peak_warehouses);
        assert!(s.table().to_string().contains("official run"));
    }

    #[test]
    fn a_noisy_dip_or_plateau_does_not_abort_the_ramp() {
        let plan = ExperimentPlan::serial(Effort::Quick);
        let s = run_protocol(&plan, 20, plateaued);
        assert_eq!(s.peak_warehouses, 4, "peak must be the true maximum");
        // The ramp ran through the dip and the plateau to the real drop.
        assert_eq!(s.ramp.len(), 6);
        assert_eq!(s.scored.len(), 5);
        assert_eq!(s.scored.first().unwrap().warehouses, 4);
        assert_eq!(s.scored.last().unwrap().warehouses, 8);
    }

    #[test]
    fn a_drop_beyond_tolerance_ends_the_ramp() {
        assert_eq!(ramp_stop(&[100.0, 110.0, 104.0]), Some(2));
        assert_eq!(ramp_stop(&[100.0, 110.0, 109.0]), None);
        assert_eq!(ramp_stop(&[]), None);
        assert_eq!(peak_of(&[100.0, 110.0, 104.0]), 2);
        assert_eq!(peak_of(&[]), 1);
    }

    #[test]
    fn speculative_rounds_match_the_serial_ramp_at_any_worker_count() {
        let serial = run_protocol(&ExperimentPlan::serial(Effort::Quick), 20, plateaued);
        for threads in [2, 3, 4, 7] {
            let plan = ExperimentPlan::serial(Effort::Quick).with_threads(threads);
            let parallel = run_protocol(&plan, 20, plateaued);
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn monotone_curve_rides_the_ramp_to_the_cap() {
        let plan = ExperimentPlan::serial(Effort::Quick).with_threads(3);
        let s = run_protocol(&plan, 5, |w| w as f64 * 10.0);
        assert_eq!(s.ramp.len(), 5);
        assert_eq!(s.peak_warehouses, 5);
        assert_eq!(s.scored.len(), 6);
        assert!((s.score - (50.0 + 100.0) / 2.0).abs() < 35.0);
    }
}
