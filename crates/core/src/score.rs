//! The official SPECjbb2000 run protocol (paper Section 2.1).
//!
//! "The benchmark is run repeatedly with an increasing number of
//! warehouses until a maximum throughput is reached. The benchmark is
//! then run the same number of times with warehouse values starting at
//! the maximum and increasing to twice that value. Therefore, if the best
//! throughput for a system comes with n warehouses, 2n runs are made.
//! The benchmark score is the average of runs from n to 2n warehouses."
//!
//! The paper skipped this protocol in simulation (prohibitively many
//! runs) and picked representative warehouse counts; this module
//! implements the full protocol so the repository can report an official
//!-style score, and so the "optimal warehouses per system size" choice
//! used by the scaling figures is grounded rather than assumed.

use simstats::{fnum, Table};

use crate::experiment::{jbb_machine, measure};
use crate::Effort;

/// One warehouse point of a ramp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RampPoint {
    /// Warehouses (= threads).
    pub warehouses: usize,
    /// Throughput in transactions per second.
    pub throughput: f64,
}

/// A complete official-style run.
#[derive(Debug, Clone)]
pub struct JbbScore {
    /// The ascending ramp up to the peak.
    pub ramp: Vec<RampPoint>,
    /// The scored runs from `n` to `2n` warehouses.
    pub scored: Vec<RampPoint>,
    /// The peak warehouse count `n`.
    pub peak_warehouses: usize,
    /// The SPECjbb-style score: mean throughput over `n..=2n`.
    pub score: f64,
}

/// Runs the official protocol on `pset` processors.
///
/// The ramp ascends one warehouse at a time until throughput drops below
/// its running maximum (bounded by `max_warehouses` as a safety net).
pub fn official_run(pset: usize, max_warehouses: usize, effort: Effort) -> JbbScore {
    let mut ramp = Vec::new();
    let mut best: Option<RampPoint> = None;
    let tput_at = |w: usize| {
        let mut m = jbb_machine(pset, w, 1, effort);
        measure(&mut m, effort).throughput()
    };
    for w in 1..=max_warehouses {
        let p = RampPoint {
            warehouses: w,
            throughput: tput_at(w),
        };
        ramp.push(p);
        match best {
            Some(b) if p.throughput <= b.throughput => break,
            _ => best = Some(p),
        }
    }
    let n = best.map(|b| b.warehouses).unwrap_or(1);
    let mut scored = Vec::new();
    for w in n..=(2 * n) {
        // Reuse ramp measurements where available.
        let throughput = ramp
            .iter()
            .find(|p| p.warehouses == w)
            .map(|p| p.throughput)
            .unwrap_or_else(|| tput_at(w));
        scored.push(RampPoint {
            warehouses: w,
            throughput,
        });
    }
    let score = scored.iter().map(|p| p.throughput).sum::<f64>() / scored.len() as f64;
    JbbScore {
        ramp,
        scored,
        peak_warehouses: n,
        score,
    }
}

impl JbbScore {
    /// Renders the ramp and the scored region.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "SPECjbb official run protocol (peak n = {}, score = {:.0} tx/s)",
                self.peak_warehouses, self.score
            ),
            &["warehouses", "throughput", "scored"],
        );
        for p in &self.ramp {
            let scored = self.scored.iter().any(|s| s.warehouses == p.warehouses);
            t.row(&[
                p.warehouses.to_string(),
                fnum(p.throughput),
                if scored { "*".into() } else { String::new() },
            ]);
        }
        for p in &self.scored {
            if !self.ramp.iter().any(|r| r.warehouses == p.warehouses) {
                t.row(&[p.warehouses.to_string(), fnum(p.throughput), "*".into()]);
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn official_run_finds_a_peak_and_scores_n_to_2n() {
        let s = official_run(2, 6, Effort::Quick);
        assert!(s.peak_warehouses >= 1);
        assert_eq!(s.scored.len(), s.peak_warehouses + 1);
        assert!(s.score > 0.0);
        assert_eq!(s.scored.first().unwrap().warehouses, s.peak_warehouses);
        assert_eq!(s.scored.last().unwrap().warehouses, 2 * s.peak_warehouses);
        assert!(s.table().to_string().contains("official run"));
    }
}
