//! Figure 9: effect of garbage collection on throughput scaling.
//!
//! The paper: subtracting garbage-collection time from the runtime gives
//! only slightly better speedups — statistically significant for ECperf
//! up to 6 processors, insignificant at larger sizes. GC is *not* the
//! main scalability limiter.

use simstats::{fnum, Table};

use crate::figures::scaling::{run_scaling, ScalingData, ScalingPoint};
use crate::Effort;

/// One workload's measured and GC-factored-out speedups.
#[derive(Debug, Clone)]
pub struct GcSpeedups {
    /// `(processors, speedup, speedup with GC time factored out)`.
    pub points: Vec<(usize, f64, f64)>,
}

/// The Figure 9 result.
#[derive(Debug, Clone)]
pub struct Fig09 {
    /// ECperf's series.
    pub ecperf: GcSpeedups,
    /// SPECjbb's series.
    pub jbb: GcSpeedups,
}

fn series(points: &[ScalingPoint]) -> GcSpeedups {
    let base = points
        .first()
        .map(|p| p.mean(|r| r.throughput()))
        .unwrap_or(1.0)
        .max(f64::MIN_POSITIVE);
    let base_nogc = points
        .first()
        .map(|p| p.mean(|r| r.throughput_no_gc()))
        .unwrap_or(1.0)
        .max(f64::MIN_POSITIVE);
    GcSpeedups {
        points: points
            .iter()
            .map(|p| {
                (
                    p.p,
                    p.mean(|r| r.throughput()) / base,
                    p.mean(|r| r.throughput_no_gc()) / base_nogc,
                )
            })
            .collect(),
    }
}

/// Runs the experiment.
pub fn run(effort: Effort, ps: &[usize]) -> Fig09 {
    from_data(&run_scaling(effort, ps))
}

/// Derives the figure from an existing scaling sweep.
pub fn from_data(data: &ScalingData) -> Fig09 {
    Fig09 {
        ecperf: series(&data.ecperf),
        jbb: series(&data.jbb),
    }
}

impl Fig09 {
    /// Renders the solid (measured) and dotted (no-GC) curves.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Figure 9: Effect of Garbage Collection on Throughput Scaling (speedup)",
            &["P", "ECperf", "ECperf noGC", "SPECjbb", "SPECjbb noGC"],
        );
        for (e, j) in self.ecperf.points.iter().zip(&self.jbb.points) {
            t.row(&[e.0.to_string(), fnum(e.1), fnum(e.2), fnum(j.1), fnum(j.2)]);
        }
        t
    }

    /// Checks the paper's qualitative claims.
    pub fn shape_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        for (name, s) in [("ECperf", &self.ecperf), ("SPECjbb", &self.jbb)] {
            for &(p, with, without) in &s.points {
                // Factoring GC out never hurts much (small numerical noise
                // allowed) and never transforms the curve.
                if without < with * 0.9 {
                    v.push(format!(
                        "{name} at {p}p: no-GC speedup below measured ({without:.2} < {with:.2})"
                    ));
                }
                if without > with * 1.6 {
                    v.push(format!(
                        "{name} at {p}p: GC dominates scaling ({with:.2} -> {without:.2}), \
                         contradicting the paper"
                    ));
                }
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_gap_is_small() {
        let f = run(Effort::Quick, &[1, 4]);
        for (_, with, without) in f.jbb.points.iter().chain(&f.ecperf.points) {
            assert!(*without >= with * 0.8, "no-GC {without} vs {with}");
        }
        assert!(f.table().to_string().contains("Figure 9"));
    }
}
