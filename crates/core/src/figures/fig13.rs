//! Figure 13: data-cache miss rate vs cache size.
//!
//! The paper: small (16–64 KB) caches see tens of misses per 1000
//! instructions; at 1 MB and beyond the data miss rate falls under two
//! per 1000. ECperf's data miss rate is *lower than even the smallest
//! SPECjbb configuration's* — its middle-tier data set is small — while
//! SPECjbb's grows with the warehouse count (up to ~30% higher at 25
//! warehouses than at 1), since the emulated database lives in the heap.

use simstats::Table;

use crate::figures::fig12::{at_size, render_curves, run_sweeps, Curve, SweepData, JBB_WAREHOUSES};
use crate::Effort;

/// The Figure 13 result.
#[derive(Debug, Clone)]
pub struct Fig13 {
    /// ECperf's curve.
    pub ecperf: Curve,
    /// SPECjbb's curves at 1/10/25 warehouses.
    pub jbb: [Curve; 3],
}

/// Runs the experiment.
pub fn run(effort: Effort) -> Fig13 {
    from_data(&run_sweeps(effort))
}

/// Derives the figure from existing sweep data.
pub fn from_data(d: &SweepData) -> Fig13 {
    Fig13 {
        ecperf: d.ecperf_d.clone(),
        jbb: d.jbb_d.clone(),
    }
}

impl Fig13 {
    /// Renders the paper's series.
    pub fn table(&self) -> Table {
        render_curves(
            "Figure 13: Data Cache Miss Rate (misses / 1000 instructions)",
            &self.ecperf,
            &self.jbb,
        )
    }

    /// Checks the paper's qualitative claims.
    pub fn shape_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        let sizes_big = [1u64 << 20, 4 << 20];
        // SPECjbb's miss rate grows with the data set (warehouses).
        for &size in &sizes_big {
            let j1 = at_size(&self.jbb[0], size);
            let j25 = at_size(&self.jbb[2], size);
            if j25 < j1 {
                v.push(format!(
                    "SPECjbb-25 D-miss at {}KB ({j25:.2}) must exceed SPECjbb-1 ({j1:.2})",
                    size >> 10
                ));
            }
        }
        // ECperf stays below SPECjbb's largest configuration at L2 sizes.
        for &size in &sizes_big {
            let e = at_size(&self.ecperf, size);
            let j25 = at_size(&self.jbb[2], size);
            if e > j25 {
                v.push(format!(
                    "ECperf D-miss at {}KB ({e:.2}) must be below SPECjbb-25 ({j25:.2})",
                    size >> 10
                ));
            }
        }
        // Small caches see substantial miss rates; 1 MB sees low ones.
        let e64 = at_size(&self.ecperf, 64 << 10);
        if e64 < 2.0 {
            v.push(format!("64KB D-miss implausibly low: {e64:.2}"));
        }
        for (name, c) in [("SPECjbb-1", &self.jbb[0]), ("ECperf", &self.ecperf)] {
            let m1 = at_size(c, 1 << 20);
            if m1 > 6.0 {
                v.push(format!("{name}: 1MB D-miss too high: {m1:.2}"));
            }
        }
        let _ = JBB_WAREHOUSES;
        v
    }
}
