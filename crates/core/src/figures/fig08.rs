//! Figure 8: cache-to-cache transfer ratio.
//!
//! The paper: the fraction of L2 misses that hit in another processor's
//! cache starts around 25% at two processors and rises rapidly past 60%
//! by fourteen — comparable to the highest ratios published for other
//! commercial workloads. Transfers occur even with the benchmark bound
//! to one processor, because the OS runs on all sixteen.

use simstats::Table;

use crate::figures::scaling::{run_scaling, ScalingData, ScalingPoint};
use crate::Effort;

/// The Figure 8 result: `(processors, c2c ratio)` per workload.
#[derive(Debug, Clone)]
pub struct Fig08 {
    /// ECperf's series.
    pub ecperf: Vec<(usize, f64)>,
    /// SPECjbb's series.
    pub jbb: Vec<(usize, f64)>,
}

fn series(points: &[ScalingPoint]) -> Vec<(usize, f64)> {
    points
        .iter()
        .map(|p| (p.p, p.mean(|r| r.c2c_ratio)))
        .collect()
}

/// Runs the experiment.
pub fn run(effort: Effort, ps: &[usize]) -> Fig08 {
    from_data(&run_scaling(effort, ps))
}

/// Derives the figure from an existing scaling sweep.
pub fn from_data(data: &ScalingData) -> Fig08 {
    Fig08 {
        ecperf: series(&data.ecperf),
        jbb: series(&data.jbb),
    }
}

impl Fig08 {
    /// Renders the paper's series.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Figure 8: Cache-to-Cache Transfer Ratio (% of L2 misses)",
            &["P", "ECperf", "SPECjbb"],
        );
        for (e, j) in self.ecperf.iter().zip(&self.jbb) {
            t.row(&[
                e.0.to_string(),
                format!("{:.1}", e.1 * 100.0),
                format!("{:.1}", j.1 * 100.0),
            ]);
        }
        t
    }

    /// Checks the paper's qualitative claims.
    pub fn shape_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        for (name, s) in [("ECperf", &self.ecperf), ("SPECjbb", &self.jbb)] {
            let first = s.first().copied().unwrap_or((1, 0.0));
            let last = s.last().copied().unwrap_or((1, 0.0));
            // Nonzero even at one processor (OS on the other cpus).
            if first.0 == 1 && first.1 <= 0.0 {
                v.push(format!("{name}: 1-processor c2c ratio should be nonzero"));
            }
            // Rises substantially with processors.
            if last.0 >= 8 && last.1 < first.1 + 0.10 {
                v.push(format!(
                    "{name}: c2c ratio must rise with P: {:.2} -> {:.2}",
                    first.1, last.1
                ));
            }
            if last.0 >= 12 && last.1 < 0.25 {
                v.push(format!(
                    "{name}: large-system c2c ratio too small: {:.2}",
                    last.1
                ));
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_ratio_grows() {
        let f = run(Effort::Quick, &[1, 4]);
        assert!(f.jbb[1].1 > f.jbb[0].1, "{:?}", f.jbb);
        assert!(f.ecperf[1].1 > f.ecperf[0].1, "{:?}", f.ecperf);
        assert!(f.table().to_string().contains("Figure 8"));
    }
}
