//! Figure-7-style cycle-attribution breakdown per workload, with the
//! GC/mutator split the aggregate CPI stacks hide.
//!
//! Three jobs, each attributing every charged cycle to a
//! `phase;component;cause;region` stack through an [`AttribProfiler`]:
//!
//! - **SPECjbb** and **ECperf** run execution-driven with the profiler
//!   attached as an observer, so the fold sees exactly the stall
//!   charges the CPU timers made;
//! - **trace replay** captures a short SPECjbb window with a
//!   [`TraceObserver`], then re-attributes the capture offline —
//!   driving a fresh memory system and fresh timers from the recorded
//!   reference stream. Captures do not tag instruction batches with a
//!   source, so the replay fold is stall-only (no base rows); it
//!   demonstrates that attribution needs only a trace, not a live run.
//!
//! Each job's span carries its full counter snapshot plus the
//! `attrib.*` counters, and its folded stacks land in the run log as
//! `attrib` records — `simreport --attrib` / `--folded` render them,
//! and `--check` cross-validates the stack sums against the span's
//! `attrib.cycles`.

use simstats::Table;

use memsys::{AccessKind, MemorySystem, SystemTraceEvent};
use probes::registry::Snapshot;
use simcpu::{CpuTimer, StallCharge};
use workloads::model::Workload;

use crate::engine::{
    AccessEvent, AccessSource, AttribProfiler, Machine, MachineConfig, SimObserver, TraceObserver,
};
use crate::experiment::{
    ecperf_machine, jbb_machine, measure_in, Effort, ExperimentPlan, JobTelemetry,
};

/// The capture horizon for the trace-replay arm, in cycles. Fixed
/// rather than effort-scaled: a capture holds every reference in
/// memory, so the horizon is bounded to keep the trace a few million
/// events at any effort.
const CAPTURE_WARMUP: u64 = 2_000_000;
const CAPTURE_WINDOW: u64 = 5_000_000;

/// One workload's attribution fold.
#[derive(Debug, Clone)]
pub struct WorkloadAttrib {
    /// Display name.
    pub name: &'static str,
    /// `(stack, cycles)` rows, as the profiler folded them.
    pub folded: Vec<(String, u64)>,
    /// True for the trace-replay arm, whose fold carries no base
    /// ("other") rows — captures do not tag instruction batches.
    pub stall_only: bool,
}

impl WorkloadAttrib {
    fn sum_where(&self, keep: impl Fn(&[&str]) -> bool) -> u64 {
        self.folded
            .iter()
            .filter(|(s, _)| {
                let frames: Vec<&str> = s.split(';').collect();
                keep(&frames)
            })
            .map(|&(_, c)| c)
            .sum()
    }

    /// Total attributed cycles.
    pub fn total(&self) -> u64 {
        self.folded.iter().map(|&(_, c)| c).sum()
    }

    /// Cycles attributed to `phase`.
    pub fn phase_total(&self, phase: &str) -> u64 {
        self.sum_where(|f| f[0] == phase)
    }

    /// Cycles in one `phase;component` slice, optionally narrowed to a
    /// cause.
    pub fn slice(&self, phase: &str, component: &str, cause: Option<&str>) -> u64 {
        self.sum_where(|f| f[0] == phase && f[1] == component && cause.is_none_or(|c| f[2] == c))
    }

    /// Cycles with `cause` across all phases and components.
    pub fn cause_total(&self, cause: &str) -> u64 {
        self.sum_where(|f| f[2] == cause)
    }

    /// Data-stall cycles across all phases.
    pub fn data_stall_total(&self) -> u64 {
        self.sum_where(|f| f[1] == "data_stall")
    }
}

/// The attribution figure: one fold per workload arm.
#[derive(Debug, Clone)]
pub struct AttribFig {
    /// SPECjbb, ECperf, then the trace replay.
    pub workloads: Vec<WorkloadAttrib>,
}

/// Which arm a job runs.
#[derive(Debug, Clone, Copy)]
enum Arm {
    Jbb,
    Ecperf,
    Replay,
}

impl Arm {
    fn name(self) -> &'static str {
        match self {
            Arm::Jbb => "SPECjbb",
            Arm::Ecperf => "ECperf",
            Arm::Replay => "jbb-replay",
        }
    }
}

/// Runs all three arms as plan jobs: folds, span counters (machine
/// counters plus `attrib.*`) and `attrib` records all land through the
/// plan's run log. Live arms honor the plan's
/// [`SimMode`](crate::SimMode) — a sampled run attributes the detailed
/// sample units only.
pub fn run_with(plan: &ExperimentPlan, p: usize) -> AttribFig {
    let effort = plan.effort();
    let mode = plan.mode().clone();
    let arms = [Arm::Jbb, Arm::Ecperf, Arm::Replay];
    let labels = arms
        .iter()
        .map(|a| format!("attrib:{}", a.name()))
        .collect();
    let folds = plan.clone().with_job_labels(labels).run_telemetry(
        &arms,
        |a| match a {
            Arm::Replay => (CAPTURE_WARMUP + CAPTURE_WINDOW) * 4,
            _ => effort.cost_hint(p),
        },
        |&a| match a {
            Arm::Jbb => profile_live(jbb_machine(p, 2 * p, 1, effort), effort, &mode),
            Arm::Ecperf => profile_live(ecperf_machine(p, 1, effort), effort, &mode),
            Arm::Replay => profile_replay(effort),
        },
    );
    AttribFig {
        workloads: arms
            .iter()
            .zip(folds)
            .map(|(a, folded)| WorkloadAttrib {
                name: a.name(),
                folded,
                stall_only: matches!(a, Arm::Replay),
            })
            .collect(),
    }
}

/// Measures one machine with an [`AttribProfiler`] attached and
/// packages the fold for the span.
fn profile_live<W: Workload>(
    mut m: Machine<W>,
    effort: Effort,
    mode: &crate::SimMode,
) -> (Vec<(String, u64)>, JobTelemetry) {
    // The machine builders all start from `MachineConfig::e6000`, so the
    // default pipeline's base CPI is the one the timers charge.
    let base_cpi = MachineConfig::e6000(1).pipeline.base_cpi;
    let handle = m.attach_observer(AttribProfiler::new(m.workload().region_map(), base_cpi));
    let (_report, sampled) = measure_in(&mut m, effort, mode);
    let prof = m.observer(handle);
    let folded = prof.folded();
    let mut counters = m.counters();
    counters.record(prof);
    let tele = JobTelemetry::counters(Some(counters))
        .with_samples(sampled.as_ref())
        .with_attribs(prof.to_records(0, 0));
    (folded, tele)
}

/// Captures a short SPECjbb window and re-attributes it offline from
/// the trace alone.
fn profile_replay(effort: Effort) -> (Vec<(String, u64)>, JobTelemetry) {
    let cfg = MachineConfig::e6000(2);
    let mut m = jbb_machine(2, 4, 1, effort);
    let regions = m.workload().region_map();
    let handle = m.attach_observer(TraceObserver::new());
    m.run_until(CAPTURE_WARMUP);
    m.begin_measurement();
    let start = m.time();
    m.run_until(start + CAPTURE_WINDOW);
    let trace = m.observer(handle).trace().clone();
    drop(m);

    // Offline re-attribution: a fresh memory system and fresh timers,
    // driven by the recorded global reference order. Per-CPU reference
    // streams match the live run's, so the timers' stall charges do
    // too. Kernel ticks bypass the timers exactly as they do live.
    let mut sys = MemorySystem::new(cfg.hierarchy);
    let mut timers: Vec<CpuTimer> = (0..trace.cpus().max(1))
        .map(|_| CpuTimer::new(cfg.pipeline, cfg.latency))
        .collect();
    let mut prof = AttribProfiler::new(regions, cfg.pipeline.base_cpi);
    for ev in trace.events() {
        match *ev {
            SystemTraceEvent::Instructions { cpu, n } => {
                // Retirement keeps the store-buffer drain clock honest;
                // the fold stays stall-only because captures carry no
                // per-batch source tag.
                timers[cpu as usize].retire(n);
            }
            SystemTraceEvent::Ref {
                cpu,
                source,
                kind,
                addr,
            } => {
                let c = cpu as usize;
                let outcome = sys.access(c, kind, addr);
                let charge = if matches!(source, AccessSource::KernelTick) {
                    StallCharge::default()
                } else {
                    match kind {
                        AccessKind::Ifetch => timers[c].ifetch(&outcome),
                        AccessKind::Load => timers[c].load(&outcome),
                        AccessKind::Store => timers[c].store(&outcome),
                    }
                };
                prof.on_access(&AccessEvent {
                    cpu: c,
                    kind,
                    addr,
                    outcome: &outcome,
                    now: timers[c].cycles(),
                    source,
                    charge,
                });
            }
            SystemTraceEvent::WindowReset => {
                sys.reset_stats();
                for t in &mut timers {
                    t.reset();
                }
                prof.on_window_reset(0);
            }
        }
    }
    let folded = prof.folded();
    let tele =
        JobTelemetry::counters(Some(Snapshot::of(&prof))).with_attribs(prof.to_records(0, 0));
    (folded, tele)
}

impl AttribFig {
    /// Renders one row per non-empty `(workload, phase)`: total cycles
    /// and each slice's share of the phase.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Cycle attribution: phase x component x cause CPI stacks (share of phase cycles)",
            &[
                "workload", "phase", "cycles", "base", "instr", "d.l2hit", "d.c2c", "d.mem",
                "d.sb", "d.raw",
            ],
        );
        for w in &self.workloads {
            for phase in ["mutator", "gc", "kernel"] {
                let total = w.phase_total(phase);
                if total == 0 {
                    continue;
                }
                let share = |c: u64| format!("{:.3}", c as f64 / total as f64);
                t.row(&[
                    w.name.to_string(),
                    phase.to_string(),
                    total.to_string(),
                    share(w.slice(phase, "other", None)),
                    share(w.slice(phase, "instr_stall", None)),
                    share(w.slice(phase, "data_stall", Some("l2_hit"))),
                    share(w.slice(phase, "data_stall", Some("c2c"))),
                    share(w.slice(phase, "data_stall", Some("memory"))),
                    share(w.slice(phase, "data_stall", Some("store_buffer"))),
                    share(w.slice(phase, "data_stall", Some("raw_hazard"))),
                ]);
            }
        }
        t
    }

    /// Checks the paper's qualitative claims against the fold:
    /// data-stall time dominated by L2 misses (memory + cache-to-cache),
    /// store-buffer stalls a minor slice of execution time, and a
    /// visible GC/mutator split.
    pub fn shape_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        for w in &self.workloads {
            let data = w.data_stall_total();
            if data == 0 {
                v.push(format!("{}: no data-stall cycles attributed", w.name));
                continue;
            }
            let l2_miss = w.cause_total("memory") + w.cause_total("c2c");
            if (l2_miss as f64) < 0.35 * data as f64 {
                v.push(format!(
                    "{}: memory+c2c share of data stall too small: {:.2}",
                    w.name,
                    l2_miss as f64 / data as f64
                ));
            }
            let sb = w.cause_total("store_buffer") as f64;
            if w.stall_only {
                // No base rows: bound the slice against data stall, as
                // Figure 7 does.
                if sb > 0.15 * data as f64 {
                    v.push(format!(
                        "{}: store-buffer share of data stall too large: {:.2}",
                        w.name,
                        sb / data as f64
                    ));
                }
            } else {
                let total = w.total() as f64;
                if sb > 0.02 * total {
                    v.push(format!(
                        "{}: store-buffer stalls are {:.1}% of execution time (paper: 1-2%)",
                        w.name,
                        100.0 * sb / total
                    ));
                }
            }
            if w.phase_total("mutator") == 0 {
                v.push(format!("{}: no mutator cycles attributed", w.name));
            }
            if !w.stall_only && w.phase_total("gc") == 0 {
                v.push(format!(
                    "{}: no gc cycles attributed — GC/mutator split missing",
                    w.name
                ));
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig(folded: Vec<(&str, u64)>, stall_only: bool) -> AttribFig {
        AttribFig {
            workloads: vec![WorkloadAttrib {
                name: "synthetic",
                folded: folded
                    .into_iter()
                    .map(|(s, c)| (s.to_string(), c))
                    .collect(),
                stall_only,
            }],
        }
    }

    #[test]
    fn healthy_fold_has_no_violations() {
        let f = fig(
            vec![
                ("mutator;other;base;all", 5000),
                ("mutator;data_stall;memory;eden", 900),
                ("mutator;data_stall;c2c;old_gen", 400),
                ("mutator;data_stall;l2_hit;old_gen", 500),
                ("mutator;data_stall;store_buffer;eden", 80),
                ("gc;other;base;all", 600),
                ("gc;data_stall;memory;old_gen", 200),
            ],
            false,
        );
        assert!(
            f.shape_violations().is_empty(),
            "{:?}",
            f.shape_violations()
        );
        let w = &f.workloads[0];
        assert_eq!(w.total(), 7680);
        assert_eq!(w.phase_total("gc"), 800);
        assert_eq!(w.slice("mutator", "data_stall", Some("c2c")), 400);
        assert_eq!(w.cause_total("memory"), 1100);
        let t = f.table().to_string();
        assert!(t.contains("mutator") && t.contains("gc"));
    }

    #[test]
    fn degenerate_folds_are_flagged() {
        // All data stall in the store buffer, no GC phase at all.
        let f = fig(
            vec![
                ("mutator;other;base;all", 1000),
                ("mutator;data_stall;store_buffer;eden", 900),
            ],
            false,
        );
        let v = f.shape_violations();
        assert!(v.iter().any(|m| m.contains("memory+c2c")), "{v:?}");
        assert!(v.iter().any(|m| m.contains("store-buffer")), "{v:?}");
        assert!(v.iter().any(|m| m.contains("GC/mutator")), "{v:?}");

        let empty = fig(vec![("mutator;other;base;all", 1000)], false);
        assert!(empty
            .shape_violations()
            .iter()
            .any(|m| m.contains("no data-stall")));
    }

    #[test]
    fn replay_reattributes_a_short_capture() {
        let (folded, tele) = profile_replay(Effort::Quick);
        assert!(!folded.is_empty(), "replay attributed nothing");
        // Stall-only: captures carry no instruction source, so no base
        // rows appear.
        assert!(folded.iter().all(|(s, _)| !s.contains(";other;base;")));
        // The span counter matches the records the job will emit — the
        // invariant `simreport --check` enforces.
        let recorded: u64 = tele.attribs.iter().map(|r| r.cycles).sum();
        let declared = tele
            .counters
            .as_ref()
            .and_then(|c| c.get("attrib.cycles"))
            .unwrap();
        assert_eq!(recorded, declared);
        // Mutator data stalls classified into heap regions, not just
        // "other".
        assert!(folded
            .iter()
            .any(|(s, _)| s.starts_with("mutator;data_stall;") && !s.ends_with(";other")));
    }
}
