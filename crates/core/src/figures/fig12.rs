//! Figure 12: instruction-cache miss rate vs cache size.
//!
//! The paper: uniprocessor simulation, 4-way set-associative caches with
//! 64-byte blocks, sizes from 64 KB to 16 MB. Instruction misses are low
//! everywhere (below one per 1000 instructions at 1 MB and beyond), but
//! ECperf — whose hot code spans the servlet engine, the EJB container
//! and the application server — has a much higher instruction miss rate
//! for intermediate caches (e.g. 256 KB) than SPECjbb at any warehouse
//! count. This is the paper's headline instruction-side difference.
//!
//! These sweeps run the *full-size* workload configurations (paper heap
//! geometry, full database), since the cache curves are exactly what
//! scaling would distort.

use memsys::{Addr, AddrRange, CacheSweep};
use simstats::Table;
use workloads::ecperf::{Ecperf, EcperfConfig};
use workloads::specjbb::{SpecJbb, SpecJbbConfig};

use crate::engine::{Machine, MachineConfig, SweepObserver};
use crate::experiment::{ExperimentPlan, WORKLOAD_BASE};
use crate::Effort;

/// One workload's miss-rate curve: `(capacity bytes, misses per 1000
/// instructions)`.
pub type Curve = Vec<(u64, f64)>;

/// Sweep results for the Figure 12/13 configurations.
#[derive(Debug, Clone)]
pub struct SweepData {
    /// ECperf instruction curve.
    pub ecperf_i: Curve,
    /// ECperf data curve.
    pub ecperf_d: Curve,
    /// SPECjbb instruction curves at 1 / 10 / 25 warehouses.
    pub jbb_i: [Curve; 3],
    /// SPECjbb data curves at 1 / 10 / 25 warehouses.
    pub jbb_d: [Curve; 3],
}

/// SPECjbb warehouse counts simulated (as in the paper).
pub const JBB_WAREHOUSES: [usize; 3] = [1, 10, 25];

fn measure_sweeps<W: workloads::model::Workload>(
    mut machine: Machine<W>,
    effort: Effort,
) -> (Curve, Curve) {
    let sweeps = machine.attach_observer(SweepObserver::paper());
    // Both windows are much longer than the throughput sweeps': these are
    // full-size (unscaled) workloads, and the curves' large-cache
    // behavior is steady-state reuse, not compulsory misses — the window
    // must be long enough for the hot data to be re-touched many times.
    machine.run_until(8 * effort.window());
    machine.begin_measurement();
    let start = machine.time();
    machine.run_until(start + 8 * effort.window());
    let instr = machine.window_report().cpi.instructions.max(1);
    let curve = |sweep: &CacheSweep| {
        sweep
            .results()
            .into_iter()
            .map(|(size, p)| (size, p.misses_per_kilo_instr(instr)))
            .collect()
    };
    let obs = machine.observer(sweeps);
    (curve(obs.isweep()), curve(obs.dsweep()))
}

/// Runs the uniprocessor sweeps for all four configurations with a
/// core-per-worker [`ExperimentPlan`].
pub fn run_sweeps(effort: Effort) -> SweepData {
    run_sweeps_with(&ExperimentPlan::new(effort))
}

/// Runs the uniprocessor sweeps for all four configurations — ECperf
/// plus SPECjbb at each warehouse count — as independent jobs on the
/// plan's worker pool.
pub fn run_sweeps_with(plan: &ExperimentPlan) -> SweepData {
    let effort = plan.effort();
    let mc = || {
        let mut m = MachineConfig::e6000(1);
        m.seed = 1;
        m
    };
    // Job 0 is ECperf; jobs 1.. are the SPECjbb warehouse counts.
    let jobs: Vec<Option<usize>> = std::iter::once(None)
        .chain(JBB_WAREHOUSES.iter().map(|&w| Some(w)))
        .collect();
    let mut curves = plan
        .run(&jobs, |job| match job {
            None => {
                let cfg = EcperfConfig::full(10);
                let region = AddrRange::new(Addr(WORKLOAD_BASE), cfg.required_bytes());
                measure_sweeps(Machine::new(mc(), Ecperf::new(cfg, region)), effort)
            }
            Some(w) => {
                let cfg = SpecJbbConfig::full(*w);
                let region = AddrRange::new(Addr(WORKLOAD_BASE), cfg.required_bytes());
                measure_sweeps(Machine::new(mc(), SpecJbb::new(cfg, region)), effort)
            }
        })
        .into_iter();
    let (ecperf_i, ecperf_d) = curves.next().expect("ecperf curves");
    let mut jbb = JBB_WAREHOUSES.map(|_| curves.next().expect("jbb curves"));
    let [j1, j2, j3] = &mut jbb;
    SweepData {
        ecperf_i,
        ecperf_d,
        jbb_i: [
            std::mem::take(&mut j1.0),
            std::mem::take(&mut j2.0),
            std::mem::take(&mut j3.0),
        ],
        jbb_d: [
            std::mem::take(&mut j1.1),
            std::mem::take(&mut j2.1),
            std::mem::take(&mut j3.1),
        ],
    }
}

/// The Figure 12 result.
#[derive(Debug, Clone)]
pub struct Fig12 {
    /// ECperf's curve.
    pub ecperf: Curve,
    /// SPECjbb's curves at 1/10/25 warehouses.
    pub jbb: [Curve; 3],
}

/// Runs the experiment.
pub fn run(effort: Effort) -> Fig12 {
    from_data(&run_sweeps(effort))
}

/// Derives the figure from existing sweep data.
pub fn from_data(d: &SweepData) -> Fig12 {
    Fig12 {
        ecperf: d.ecperf_i.clone(),
        jbb: d.jbb_i.clone(),
    }
}

/// Renders a miss-rate table shared by Figures 12 and 13.
pub fn render_curves(title: &str, ecperf: &Curve, jbb: &[Curve; 3]) -> Table {
    let mut t = Table::new(
        title,
        &["size", "ECperf", "SPECjbb-1", "SPECjbb-10", "SPECjbb-25"],
    );
    for (i, (size, e)) in ecperf.iter().enumerate() {
        t.row(&[
            if *size >= 1 << 20 {
                format!("{}MB", size >> 20)
            } else {
                format!("{}KB", size >> 10)
            },
            format!("{e:.3}"),
            format!("{:.3}", jbb[0][i].1),
            format!("{:.3}", jbb[1][i].1),
            format!("{:.3}", jbb[2][i].1),
        ]);
    }
    t
}

/// Value of a curve at an exact capacity (0 when absent).
pub fn at_size(curve: &Curve, size: u64) -> f64 {
    curve
        .iter()
        .find(|(s, _)| *s == size)
        .map(|(_, v)| *v)
        .unwrap_or(0.0)
}

use at_size as at;

impl Fig12 {
    /// Renders the paper's series.
    pub fn table(&self) -> Table {
        render_curves(
            "Figure 12: Instruction Cache Miss Rate (misses / 1000 instructions)",
            &self.ecperf,
            &self.jbb,
        )
    }

    /// Checks the paper's qualitative claims.
    pub fn shape_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        // ECperf's 256 KB instruction miss rate is much higher than any
        // SPECjbb configuration's.
        let e256 = at(&self.ecperf, 256 << 10);
        for (i, jbb) in self.jbb.iter().enumerate() {
            let j256 = at(jbb, 256 << 10);
            if e256 < 2.0 * j256 + 0.5 {
                v.push(format!(
                    "ECperf 256KB I-miss ({e256:.2}) must far exceed SPECjbb-{} ({j256:.2})",
                    JBB_WAREHOUSES[i]
                ));
            }
        }
        // Instruction misses fall well below 1/1000 at >= 4 MB.
        let m4 = at(&self.ecperf, 4 << 20);
        if m4 > 1.0 {
            v.push(format!("ECperf: 4MB I-miss too high: {m4:.2}"));
        }
        // Curves are non-increasing in cache size.
        for (name, c) in [
            ("ECperf", &self.ecperf),
            ("SPECjbb-1", &self.jbb[0]),
            ("SPECjbb-25", &self.jbb[2]),
        ] {
            for w in c.windows(2) {
                if w[1].1 > w[0].1 * 1.1 + 0.1 {
                    v.push(format!("{name}: I-miss rate rose with cache size"));
                    break;
                }
            }
        }
        v
    }
}
