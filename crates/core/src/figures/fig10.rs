//! Figure 10: cache-to-cache transfers per processor per second over time.
//!
//! The paper's surprise result: contrary to the authors' hypothesis that
//! garbage collection caused the high cache-to-cache transfer rates, the
//! snoop-copyback rate *collapses to nearly zero during collections* (the
//! three GC windows in their 30-second SPECjbb trace). The mechanism: the
//! mutators' dirty lines have long been written back by collection time
//! (eden is far larger than the caches), so the single collector thread
//! reads from memory, and the idle mutators issue no requests at all.
//!
//! The time series comes from the generic [`IntervalSampler`]: the
//! `bus.snoop_cb` counter delta of each sampled interval *is* the
//! figure's y-axis, normalized per million cycles since a GC pause can
//! stretch an interval past its nominal width.

use memsys::{Addr, AddrRange, DramConfig, MemoryConfig};
use probes::runlog::{EventRecord, IntervalRecord};
use simstats::Table;
use workloads::specjbb::{SpecJbb, SpecJbbConfig};

use crate::engine::{
    measure_sampled, IntervalSample, IntervalSampler, Machine, MachineConfig, SamplingConfig,
    TimelineCollector,
};
use crate::experiment::WORKLOAD_BASE;
use crate::Effort;

/// The counter whose interval deltas form the series.
const C2C_COUNTER: &str = "bus.snoop_cb";

/// Nominal sampling interval for this figure. The collapse is only
/// visible when a collection spans whole intervals, so these are finer
/// than the scaled collections.
const BUCKET_CYCLES: u64 = 2_000_000;

/// Heap scale for this figure. The mechanism behind the collapse is that
/// eden dwarfs the caches (320 MB vs 1 MB in the paper), so the mutators'
/// dirty lines are long written back when the collector reads them; the
/// heap here is scaled far more gently than in the throughput sweeps to
/// preserve that ratio.
const SCALE_DIVISOR: u64 = 8;

/// The Figure 10 result: the sampled time series.
#[derive(Debug, Clone)]
pub struct Fig10 {
    /// Per-interval counter deltas and GC overlap, in time order.
    pub intervals: Vec<IntervalSample>,
    /// Nominal interval width in cycles (a GC pause can stretch an
    /// individual interval past this; rates normalize by actual width).
    pub interval_cycles: u64,
    /// Number of collections in the trace.
    pub gc_count: u64,
    /// Detailed unit spans when the trace ran sampled (empty for full
    /// runs): counter deltas inside these spans are exact, while fast
    /// spans only see the functional-warming subsample of references.
    pub detailed_spans: Vec<(u64, u64)>,
    /// The warming subsample factor (1 for full runs): rates outside
    /// `detailed_spans` are multiplied by this to undo the subsample.
    pub warm_factor: u64,
    /// Run-observatory timeline events (GC pauses, window resets,
    /// sample-unit strata, DRAM stall episodes) with placeholder
    /// `run`/`id`, restamped by [`Fig10::event_records`].
    pub events: Vec<EventRecord>,
}

/// Runs the experiment: one SPECjbb run, sampled until at least three
/// collections (or a generous horizon) have happened.
pub fn run(effort: Effort, pset: usize) -> Fig10 {
    run_in(effort, pset, MemoryConfig::Flat, false)
}

/// [`run`] against the banked-DRAM backend: the same trace, but each
/// interval's counter tree now carries `dram.queue_occupancy` and
/// `dram.queue_stalls`, so `simreport --simstat` renders DRAM pressure
/// over time next to the c2c series (GC's single-threaded sweep shows
/// up as a queue-occupancy trough).
pub fn run_dram(effort: Effort, pset: usize) -> Fig10 {
    run_in(
        effort,
        pset,
        MemoryConfig::BankedDram(DramConfig::default()),
        false,
    )
}

/// [`run`] through the sampled-execution spine: the trace fast-forwards
/// between signature-picked units and the series is reconstructed by
/// scaling fast-span intervals by the warming subsample factor.
pub fn run_sampled(effort: Effort, pset: usize) -> Fig10 {
    run_in(effort, pset, MemoryConfig::Flat, true)
}

fn run_in(effort: Effort, pset: usize, memory: MemoryConfig, sampled: bool) -> Fig10 {
    let cfg = SpecJbbConfig::scaled(2 * pset, SCALE_DIVISOR);
    let region = AddrRange::new(Addr(WORKLOAD_BASE), cfg.required_bytes());
    let mut mc = MachineConfig::e6000(pset);
    mc.seed = 1;
    mc.sample_interval = BUCKET_CYCLES;
    mc.hierarchy.memory = memory;
    let mut m = Machine::new(mc, SpecJbb::new(cfg, region));
    let sampler = m.attach_observer(IntervalSampler::new(BUCKET_CYCLES));
    let timeline = m.attach_observer(TimelineCollector::new());
    if sampled {
        // The sampled spine owns the schedule, so the trace runs a
        // fixed horizon instead of stopping at the third collection.
        let window = effort.window() * 8;
        let scfg = SamplingConfig::for_window(window);
        let warm_factor = u64::from(scfg.warm_every);
        let run = measure_sampled(&mut m, effort.warmup(), window, &scfg);
        let detailed_spans = run
            .units
            .iter()
            .filter(|u| u.detailed)
            .map(|u| (u.start, u.end))
            .collect();
        let mut events = m.observer(timeline).to_records(0, 0);
        events.extend(run.event_records(0, 0));
        events.extend(dram_stall_events(&mut m));
        return Fig10 {
            intervals: m.observer(sampler).samples().to_vec(),
            interval_cycles: BUCKET_CYCLES,
            gc_count: m.gc_count(),
            detailed_spans,
            warm_factor,
            events,
        };
    }
    m.run_until(effort.warmup());
    m.begin_measurement();
    let start = m.time();
    // Run long enough to capture several collections.
    let horizon = start + effort.window() * 12;
    let mut next = start;
    while m.gc_count() < 3 && next < horizon {
        next += effort.window();
        m.run_until(next);
    }
    let mut events = m.observer(timeline).to_records(0, 0);
    events.extend(dram_stall_events(&mut m));
    Fig10 {
        intervals: m.observer(sampler).samples().to_vec(),
        interval_cycles: BUCKET_CYCLES,
        gc_count: m.gc_count(),
        detailed_spans: Vec::new(),
        warm_factor: 1,
        events,
    }
}

/// Drains the machine's DRAM queue-stall episodes as `dram.stall`
/// timeline spans (empty with the flat backend).
fn dram_stall_events(m: &mut Machine<SpecJbb>) -> Vec<EventRecord> {
    m.take_dram_stall_episodes()
        .into_iter()
        .map(|(start, end)| EventRecord {
            run: 0,
            id: 0,
            name: "dram.stall".into(),
            start,
            end,
        })
        .collect()
}

impl Fig10 {
    /// One interval's snoop-copyback rate per million cycles. In a
    /// sampled trace, intervals outside the detailed unit spans only
    /// saw the warming subsample of references, so their raw rate is
    /// multiplied back up by `warm_factor` (intervals straddling a
    /// span boundary are treated as fast — a bounded overestimate).
    fn c2c_rate(&self, s: &IntervalSample) -> f64 {
        let exact = self.warm_factor == 1
            || self
                .detailed_spans
                .iter()
                .any(|&(a, b)| a <= s.start && s.end <= b);
        let factor = if exact { 1.0 } else { self.warm_factor as f64 };
        s.rate_per_mcycle(C2C_COUNTER) * factor
    }

    fn mean(xs: impl Iterator<Item = f64>) -> f64 {
        let (sum, n) = xs.fold((0.0, 0u64), |(s, n), x| (s + x, n + 1));
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Mean transfer rate (per Mcycle) outside GC windows, over the
    /// intervals that saw any traffic.
    pub fn rate_outside_gc(&self) -> f64 {
        Self::mean(
            self.intervals
                .iter()
                .filter(|s| !s.gc && s.counters.get(C2C_COUNTER).unwrap_or(0) > 0)
                .map(|s| self.c2c_rate(s)),
        )
    }

    /// Mean transfer rate (per Mcycle) inside GC windows.
    pub fn rate_during_gc(&self) -> f64 {
        Self::mean(
            self.intervals
                .iter()
                .filter(|s| s.gc)
                .map(|s| self.c2c_rate(s)),
        )
    }

    /// Renders the normalized series the paper plots.
    pub fn table(&self) -> Table {
        let max = self
            .intervals
            .iter()
            .map(|s| self.c2c_rate(s))
            .fold(0.0f64, f64::max)
            .max(1e-12);
        let mut t = Table::new(
            "Figure 10: Cache-to-Cache Transfers Over Time (normalized; 100 ms intervals)",
            &["interval", "c2c (norm)", "gc"],
        );
        for s in &self.intervals {
            t.row(&[
                s.seq.to_string(),
                format!("{:.3}", self.c2c_rate(s) / max),
                if s.gc { "GC".into() } else { String::new() },
            ]);
        }
        t
    }

    /// The series as RunLog `interval` records for job `(run, id)` —
    /// what `figures` streams into `RUNLOG_figures.jsonl`.
    pub fn records(&self, run: usize, id: usize) -> Vec<IntervalRecord> {
        self.intervals
            .iter()
            .map(|s| IntervalRecord {
                run,
                id,
                seq: s.seq,
                start: s.start,
                end: s.end,
                gc: s.gc,
                counters: s.counters.clone(),
            })
            .collect()
    }

    /// The timeline events as RunLog `event` records for job
    /// `(run, id)`.
    pub fn event_records(&self, run: usize, id: usize) -> Vec<EventRecord> {
        self.events
            .iter()
            .map(|e| EventRecord {
                run,
                id,
                ..e.clone()
            })
            .collect()
    }

    /// Checks the paper's qualitative claim: the transfer rate drops
    /// dramatically during collection.
    pub fn shape_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        if self.gc_count == 0 {
            v.push("no collections in the trace".to_string());
            return v;
        }
        let outside = self.rate_outside_gc();
        let during = self.rate_during_gc();
        if outside <= 0.0 {
            v.push("no cache-to-cache traffic outside GC".to_string());
        } else if during > outside * 0.5 {
            v.push(format!(
                "c2c rate must collapse during GC: outside {outside:.1}/Mcycle, during {during:.1}"
            ));
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_trace_shows_gc_collapse() {
        // 8 processors, as in the figure run: with fewer processors the
        // mutators' dirty share of the scaled eden is proportionally
        // larger and the collapse is muted.
        let f = run(Effort::Quick, 8);
        assert!(f.gc_count > 0, "trace must include a collection");
        assert!(
            f.rate_during_gc() < f.rate_outside_gc(),
            "during={} outside={}",
            f.rate_during_gc(),
            f.rate_outside_gc()
        );
        assert!(f.intervals.iter().any(|s| s.gc), "a GC interval is flagged");
        assert!(f.table().to_string().contains("Figure 10"));
        let recs = f.records(0, 0);
        assert_eq!(recs.len(), f.intervals.len());
        assert!(recs.iter().enumerate().all(|(i, r)| r.seq == i));
        // The timeline saw the same collections the intervals flag.
        let evs = f.event_records(1, 2);
        assert!(evs.iter().all(|e| (e.run, e.id) == (1, 2)));
        assert_eq!(
            evs.iter().filter(|e| e.name == "gc.pause").count() as u64,
            f.gc_count
        );
        assert_eq!(
            evs.iter().filter(|e| e.name == "window.reset").count(),
            1,
            "one measurement window"
        );
    }
}
