//! Figure 10: cache-to-cache transfers per processor per second over time.
//!
//! The paper's surprise result: contrary to the authors' hypothesis that
//! garbage collection caused the high cache-to-cache transfer rates, the
//! snoop-copyback rate *collapses to nearly zero during collections* (the
//! three GC windows in their 30-second SPECjbb trace). The mechanism: the
//! mutators' dirty lines have long been written back by collection time
//! (eden is far larger than the caches), so the single collector thread
//! reads from memory, and the idle mutators issue no requests at all.

use memsys::{Addr, AddrRange};
use simstats::Table;
use workloads::specjbb::{SpecJbb, SpecJbbConfig};

use crate::engine::{Machine, MachineConfig, TimelineBucket, TimelineObserver};
use crate::experiment::WORKLOAD_BASE;
use crate::Effort;

/// Bucket width for this figure. The collapse is only visible when a
/// collection spans whole buckets, so the buckets are finer than the
/// scaled collections.
const BUCKET_CYCLES: u64 = 2_000_000;

/// Heap scale for this figure. The mechanism behind the collapse is that
/// eden dwarfs the caches (320 MB vs 1 MB in the paper), so the mutators'
/// dirty lines are long written back when the collector reads them; the
/// heap here is scaled far more gently than in the throughput sweeps to
/// preserve that ratio.
const SCALE_DIVISOR: u64 = 8;

/// The Figure 10 result: the bucketed time series.
#[derive(Debug, Clone)]
pub struct Fig10 {
    /// Per-bucket transfers and GC activity, in time order.
    pub buckets: Vec<TimelineBucket>,
    /// Bucket width in cycles.
    pub bucket_cycles: u64,
    /// Number of collections in the trace.
    pub gc_count: u64,
}

/// Runs the experiment: one SPECjbb run, traced until at least three
/// collections (or a generous horizon) have happened.
pub fn run(effort: Effort, pset: usize) -> Fig10 {
    let cfg = SpecJbbConfig::scaled(2 * pset, SCALE_DIVISOR);
    let region = AddrRange::new(Addr(WORKLOAD_BASE), cfg.required_bytes());
    let mut mc = MachineConfig::e6000(pset);
    mc.seed = 1;
    mc.timeline_bucket = BUCKET_CYCLES;
    let mut m = Machine::new(mc, SpecJbb::new(cfg, region));
    let timeline = m.attach_observer(TimelineObserver::new(BUCKET_CYCLES));
    m.run_until(effort.warmup());
    m.begin_measurement();
    let start = m.time();
    // Run long enough to capture several collections.
    let horizon = start + effort.window() * 12;
    let mut next = start;
    while m.gc_count() < 3 && next < horizon {
        next += effort.window();
        m.run_until(next);
    }
    Fig10 {
        buckets: m.observer(timeline).timeline(),
        bucket_cycles: BUCKET_CYCLES,
        gc_count: m.gc_count(),
    }
}

impl Fig10 {
    /// Mean transfers per bucket outside GC windows.
    pub fn rate_outside_gc(&self) -> f64 {
        let xs: Vec<u64> = self
            .buckets
            .iter()
            .filter(|b| !b.gc_active && b.c2c > 0)
            .map(|b| b.c2c)
            .collect();
        if xs.is_empty() {
            0.0
        } else {
            xs.iter().sum::<u64>() as f64 / xs.len() as f64
        }
    }

    /// Mean transfers per bucket inside GC windows.
    pub fn rate_during_gc(&self) -> f64 {
        let xs: Vec<u64> = self
            .buckets
            .iter()
            .filter(|b| b.gc_active)
            .map(|b| b.c2c)
            .collect();
        if xs.is_empty() {
            0.0
        } else {
            xs.iter().sum::<u64>() as f64 / xs.len() as f64
        }
    }

    /// Renders the normalized series the paper plots.
    pub fn table(&self) -> Table {
        let max = self.buckets.iter().map(|b| b.c2c).max().unwrap_or(1).max(1) as f64;
        let mut t = Table::new(
            "Figure 10: Cache-to-Cache Transfers Over Time (normalized; 100 ms buckets)",
            &["bucket", "c2c (norm)", "gc"],
        );
        for (i, b) in self.buckets.iter().enumerate() {
            t.row(&[
                i.to_string(),
                format!("{:.3}", b.c2c as f64 / max),
                if b.gc_active {
                    "GC".into()
                } else {
                    String::new()
                },
            ]);
        }
        t
    }

    /// Checks the paper's qualitative claim: the transfer rate drops
    /// dramatically during collection.
    pub fn shape_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        if self.gc_count == 0 {
            v.push("no collections in the trace".to_string());
            return v;
        }
        let outside = self.rate_outside_gc();
        let during = self.rate_during_gc();
        if outside <= 0.0 {
            v.push("no cache-to-cache traffic outside GC".to_string());
        } else if during > outside * 0.5 {
            v.push(format!(
                "c2c rate must collapse during GC: outside {outside:.0}/bucket, during {during:.0}"
            ));
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_trace_shows_gc_collapse() {
        // 8 processors, as in the figure run: with fewer processors the
        // mutators' dirty share of the scaled eden is proportionally
        // larger and the collapse is muted.
        let f = run(Effort::Quick, 8);
        assert!(f.gc_count > 0, "trace must include a collection");
        assert!(
            f.rate_during_gc() < f.rate_outside_gc(),
            "during={} outside={}",
            f.rate_during_gc(),
            f.rate_outside_gc()
        );
        assert!(f.table().to_string().contains("Figure 10"));
    }
}
