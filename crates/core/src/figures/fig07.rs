//! Figure 7: data-stall-time breakdown vs number of processors.
//!
//! The paper: roughly 60% of data-stall time is due to L2 misses, with
//! most of the rest L2 hits; cache-to-cache transfers grow to nearly 50%
//! of the total data stall on larger systems; store-buffer stalls are
//! only 1–2% of execution time and read-after-write hazards about 1%.

use simstats::Table;

use crate::figures::scaling::{run_scaling, ScalingData, ScalingPoint};
use crate::Effort;

/// Data-stall fractions at one processor count.
#[derive(Debug, Clone, Copy, Default)]
pub struct StallSlices {
    /// Store-buffer-full share of data-stall time.
    pub store_buffer: f64,
    /// RAW-hazard share.
    pub raw: f64,
    /// L2-hit share.
    pub l2_hit: f64,
    /// Cache-to-cache share.
    pub c2c: f64,
    /// Memory share.
    pub memory: f64,
}

impl StallSlices {
    /// Share of data stall due to L2 *misses* (c2c + memory).
    pub fn l2_miss_share(&self) -> f64 {
        self.c2c + self.memory
    }
}

/// One workload's series.
#[derive(Debug, Clone)]
pub struct StallSeries {
    /// `(processors, slices, data-stall fraction of execution time)`.
    pub points: Vec<(usize, StallSlices, f64)>,
}

/// The Figure 7 result.
#[derive(Debug, Clone)]
pub struct Fig07 {
    /// ECperf's series.
    pub ecperf: StallSeries,
    /// SPECjbb's series.
    pub jbb: StallSeries,
}

fn series(points: &[ScalingPoint]) -> StallSeries {
    StallSeries {
        points: points
            .iter()
            .map(|p| {
                let total = p.mean(|r| r.cpi.data_stall.total() as f64).max(1.0);
                let slices = StallSlices {
                    store_buffer: p.mean(|r| r.cpi.data_stall.store_buffer as f64) / total,
                    raw: p.mean(|r| r.cpi.data_stall.raw_hazard as f64) / total,
                    l2_hit: p.mean(|r| r.cpi.data_stall.l2_hit as f64) / total,
                    c2c: p.mean(|r| r.cpi.data_stall.cache_to_cache as f64) / total,
                    memory: p.mean(|r| r.cpi.data_stall.memory as f64) / total,
                };
                (p.p, slices, p.mean(|r| r.cpi.data_stall_fraction()))
            })
            .collect(),
    }
}

/// Runs the experiment.
pub fn run(effort: Effort, ps: &[usize]) -> Fig07 {
    from_data(&run_scaling(effort, ps))
}

/// Derives the figure from an existing scaling sweep.
pub fn from_data(data: &ScalingData) -> Fig07 {
    Fig07 {
        ecperf: series(&data.ecperf),
        jbb: series(&data.jbb),
    }
}

impl Fig07 {
    /// Renders the paper's stacked bars as rows (fractions of data-stall
    /// time).
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Figure 7: Data Stall Time Breakdown vs Number of Processors (fraction of data stall)",
            &[
                "workload",
                "P",
                "store buf",
                "RAW",
                "L2 hit",
                "C2C",
                "mem",
                "stall/time",
            ],
        );
        for (name, s) in [("ECperf", &self.ecperf), ("SPECjbb", &self.jbb)] {
            for (p, x, frac) in &s.points {
                t.row(&[
                    name.to_string(),
                    p.to_string(),
                    format!("{:.3}", x.store_buffer),
                    format!("{:.3}", x.raw),
                    format!("{:.3}", x.l2_hit),
                    format!("{:.3}", x.c2c),
                    format!("{:.3}", x.memory),
                    format!("{:.3}", frac),
                ]);
            }
        }
        t
    }

    /// Checks the paper's qualitative claims.
    pub fn shape_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        for (name, s) in [("ECperf", &self.ecperf), ("SPECjbb", &self.jbb)] {
            let Some((_, last, _)) = s.points.last() else {
                continue;
            };
            // Store-buffer and RAW stalls are minor slices.
            if last.store_buffer > 0.15 {
                v.push(format!(
                    "{name}: store-buffer share too large: {:.2}",
                    last.store_buffer
                ));
            }
            if last.raw > 0.15 {
                v.push(format!("{name}: RAW share too large: {:.2}", last.raw));
            }
            // The bulk of data stall is L2 misses (plus the L2-hit rest).
            if last.l2_miss_share() < 0.35 {
                v.push(format!(
                    "{name}: L2-miss share of data stall too small: {:.2}",
                    last.l2_miss_share()
                ));
            }
            // Cache-to-cache transfers become a major component at scale.
            let first_c2c = s.points.first().unwrap().1.c2c;
            if s.points.last().unwrap().0 >= 12 && last.c2c < first_c2c {
                v.push(format!(
                    "{name}: c2c stall share must grow with P ({first_c2c:.2} -> {:.2})",
                    last.c2c
                ));
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_slices_are_fractions() {
        let f = run(Effort::Quick, &[2]);
        for (_, x, frac) in f.jbb.points.iter().chain(&f.ecperf.points) {
            let sum = x.store_buffer + x.raw + x.l2_hit + x.c2c + x.memory;
            assert!((sum - 1.0).abs() < 0.05, "slices sum: {sum}");
            assert!((0.0..=1.0).contains(frac));
        }
        assert!(f.table().to_string().contains("Figure 7"));
    }
}
