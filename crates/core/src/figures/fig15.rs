//! Figure 15: cumulative distribution of cache-to-cache transfers vs the
//! *absolute* amount of memory (semi-log).
//!
//! The paper's point: even though SPECjbb touches far more data in total,
//! ECperf has the larger *absolute* communication footprint — its
//! transfers are spread over more distinct lines, not just a larger
//! percentage of a smaller set.

use simstats::{Cdf, Table};

use crate::figures::fig14::{run as run_fig14, CommFootprint, Fig14};
use crate::Effort;

/// The Figure 15 result: log-spaced CDF points per workload.
#[derive(Debug, Clone)]
pub struct Fig15 {
    /// ECperf: `(lines, cumulative share)`.
    pub ecperf: Vec<(usize, f64)>,
    /// SPECjbb: `(lines, cumulative share)`.
    pub jbb: Vec<(usize, f64)>,
    /// ECperf's communicating-line count (absolute footprint).
    pub ecperf_lines: u64,
    /// SPECjbb's communicating-line count.
    pub jbb_lines: u64,
}

/// Runs the experiment (shares Figure 14's measurement).
pub fn run(effort: Effort, pset: usize) -> Fig15 {
    from_fig14(&run_fig14(effort, pset))
}

/// Derives the figure from Figure 14's measurement.
pub fn from_fig14(f: &Fig14) -> Fig15 {
    let series = |c: &CommFootprint| Cdf::from_counts_desc(&c.counts_desc).log_spaced_series(24);
    Fig15 {
        ecperf: series(&f.ecperf),
        jbb: series(&f.jbb),
        ecperf_lines: f.ecperf.communicating_lines,
        jbb_lines: f.jbb.communicating_lines,
    }
}

impl Fig15 {
    /// Renders the semi-log CDF series.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Figure 15: Distribution of Cache-to-Cache Transfers vs Memory Touched (64-byte lines)",
            &["workload", "lines", "cumulative share"],
        );
        for (name, s) in [("ECperf", &self.ecperf), ("SPECjbb", &self.jbb)] {
            for (lines, share) in s {
                t.row(&[name.to_string(), lines.to_string(), format!("{:.3}", share)]);
            }
        }
        t
    }

    /// Checks the paper's qualitative claim.
    pub fn shape_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        // ECperf's absolute communication footprint exceeds SPECjbb's.
        if self.ecperf_lines <= self.jbb_lines {
            v.push(format!(
                "ECperf's absolute communication footprint ({} lines) should exceed \
                 SPECjbb's ({} lines)",
                self.ecperf_lines, self.jbb_lines
            ));
        }
        // CDFs are monotone and reach 1.
        for (name, s) in [("ECperf", &self.ecperf), ("SPECjbb", &self.jbb)] {
            if let Some(last) = s.last() {
                if (last.1 - 1.0).abs() > 1e-6 {
                    v.push(format!("{name}: CDF does not reach 1: {:.3}", last.1));
                }
            } else {
                v.push(format!("{name}: empty CDF"));
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_complete_cdfs() {
        let f = run(Effort::Quick, 4);
        assert!(!f.jbb.is_empty() && !f.ecperf.is_empty());
        assert!((f.jbb.last().unwrap().1 - 1.0).abs() < 1e-9);
        assert!(f.table().to_string().contains("Figure 15"));
    }
}
