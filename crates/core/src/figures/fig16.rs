//! Figure 16: data miss rates with processors sharing L2 caches.
//!
//! The paper's chip-multiprocessor experiment: eight processors, 1 MB L2
//! caches, with 1, 2, 4 or 8 processors per cache (so the *total* cache
//! shrinks as sharing grows). ECperf's data miss rate *improves*
//! monotonically with sharing — eliminating coherence misses outweighs
//! the lost capacity, even at 1/8th the aggregate cache — while
//! SPECjbb-25's *worsens*, because its warehouse data set overwhelms the
//! shared capacity. The two benchmarks lead a memory-system designer to
//! opposite conclusions.

use memsys::{Addr, AddrRange, HierarchyConfig};
use simstats::Table;
use workloads::ecperf::{Ecperf, EcperfConfig};
use workloads::specjbb::{SpecJbb, SpecJbbConfig};

use crate::engine::{Machine, MachineConfig};
use crate::experiment::{ExperimentPlan, WORKLOAD_BASE};
use crate::Effort;

/// Processors sharing each L2 in the paper's four topologies.
pub const SHARING_DEGREES: [usize; 4] = [1, 2, 4, 8];

/// The Figure 16 result: `(processors per cache, data misses / 1000
/// instructions)` per workload.
#[derive(Debug, Clone)]
pub struct Fig16 {
    /// ECperf's series.
    pub ecperf: Vec<(usize, f64)>,
    /// SPECjbb-25's series.
    pub jbb25: Vec<(usize, f64)>,
}

fn hierarchy(per_cache: usize) -> HierarchyConfig {
    let mut b = HierarchyConfig::builder(8);
    b.cpus_per_l2(per_cache);
    b.build().expect("8 divisible by 1/2/4/8")
}

fn measure_topology<W: workloads::model::Workload>(
    workload: W,
    per_cache: usize,
    effort: Effort,
) -> f64 {
    let mut mc = MachineConfig::dedicated(hierarchy(per_cache));
    mc.seed = 1;
    let mut m = Machine::new(mc, workload);
    m.run_until(effort.warmup());
    m.begin_measurement();
    let start = m.time();
    m.run_until(start + effort.window());
    let r = m.window_report();
    let data = m.memory().stats().data();
    // Demand misses plus coherence upgrades, per 1000 instructions — the
    // events a shared cache can eliminate.
    (data.l2_misses + data.upgrades) as f64 * 1000.0 / r.cpi.instructions.max(1) as f64
}

/// Runs the experiment with a core-per-worker [`ExperimentPlan`].
pub fn run(effort: Effort) -> Fig16 {
    run_with(&ExperimentPlan::new(effort))
}

/// Runs the experiment. SPECjbb uses its largest (25-warehouse)
/// configuration; the heap/database are scaled mildly so the data set
/// still dwarfs the caches. Each topology × workload is one independent
/// job on the plan's worker pool.
pub fn run_with(plan: &ExperimentPlan) -> Fig16 {
    let effort = plan.effort();
    let divisor = effort.scale_divisor();
    let jobs: Vec<(bool, usize)> = [false, true]
        .iter()
        .flat_map(|&is_jbb| SHARING_DEGREES.iter().map(move |&k| (is_jbb, k)))
        .collect();
    let mut results = plan
        .run(&jobs, |&(is_jbb, k)| {
            if is_jbb {
                // One warehouse per processor, scaled so the aggregate hot
                // warehouse data sits between 1 MB and 8 MB: it fits the
                // eight private caches but overwhelms a single shared one —
                // the capacity pressure the paper attributes SPECjbb-25's
                // loss to (the full 25-warehouse set is ~350 MB; preserving
                // its ratio to the caches is what matters, see DESIGN.md).
                let cfg = SpecJbbConfig::scaled(8, 20);
                let region = AddrRange::new(Addr(WORKLOAD_BASE), cfg.required_bytes());
                (k, measure_topology(SpecJbb::new(cfg, region), k, effort))
            } else {
                let mut cfg = EcperfConfig::scaled(10, divisor);
                cfg.threads = 24;
                cfg.db_connections = 12;
                let region = AddrRange::new(Addr(WORKLOAD_BASE), cfg.required_bytes());
                (k, measure_topology(Ecperf::new(cfg, region), k, effort))
            }
        })
        .into_iter();
    let ecperf = SHARING_DEGREES
        .iter()
        .map(|_| results.next().expect("ecperf point"))
        .collect();
    let jbb25 = SHARING_DEGREES
        .iter()
        .map(|_| results.next().expect("jbb point"))
        .collect();
    Fig16 { ecperf, jbb25 }
}

impl Fig16 {
    /// Renders the paper's bars.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Figure 16: Data Miss Rate on Shared Caches (8 cpus, 1MB L2s; misses / 1000 instr)",
            &["cpus per cache", "ECperf", "SPECjbb-25"],
        );
        for (e, j) in self.ecperf.iter().zip(&self.jbb25) {
            t.row(&[
                e.0.to_string(),
                format!("{:.2}", e.1),
                format!("{:.2}", j.1),
            ]);
        }
        t
    }

    /// Checks the paper's headline claim: sharing helps ECperf and hurts
    /// SPECjbb-25.
    pub fn shape_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        let e_first = self.ecperf.first().map(|x| x.1).unwrap_or(0.0);
        let e_last = self.ecperf.last().map(|x| x.1).unwrap_or(0.0);
        if e_last >= e_first {
            v.push(format!(
                "ECperf: 8-way-shared miss rate ({e_last:.2}) must beat private caches ({e_first:.2})"
            ));
        }
        let j_first = self.jbb25.first().map(|x| x.1).unwrap_or(0.0);
        let j_last = self.jbb25.last().map(|x| x.1).unwrap_or(0.0);
        if j_last <= j_first {
            v.push(format!(
                "SPECjbb-25: sharing must increase the miss rate ({j_first:.2} -> {j_last:.2})"
            ));
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topologies_have_expected_cache_counts() {
        assert_eq!(hierarchy(1).l2_count(), 8);
        assert_eq!(hierarchy(8).l2_count(), 1);
    }
}
