//! Figure 5: execution-mode breakdown vs number of processors.
//!
//! The paper: ECperf's system time climbs from under 5% at one processor
//! to nearly 30% at fifteen (kernel networking contention), while SPECjbb
//! spends essentially no time in the kernel; both workloads reach roughly
//! 25% idle time on large processor sets, with garbage collection only a
//! minor slice of it.

use simstats::Table;
use sysos::modes::ModeBreakdown;

use crate::figures::scaling::{run_scaling, ScalingData, ScalingPoint};
use crate::Effort;

/// Mode breakdowns per processor count for one workload.
#[derive(Debug, Clone)]
pub struct ModeSeries {
    /// `(processors, mean breakdown)`.
    pub points: Vec<(usize, ModeBreakdown)>,
}

/// The Figure 5 result.
#[derive(Debug, Clone)]
pub struct Fig05 {
    /// ECperf's series.
    pub ecperf: ModeSeries,
    /// SPECjbb's series.
    pub jbb: ModeSeries,
}

fn mean_modes(points: &[ScalingPoint]) -> ModeSeries {
    ModeSeries {
        points: points
            .iter()
            .map(|p| {
                let b = ModeBreakdown {
                    user: p.mean(|r| r.modes.user),
                    system: p.mean(|r| r.modes.system),
                    io: p.mean(|r| r.modes.io),
                    idle: p.mean(|r| r.modes.idle),
                    gc_idle: p.mean(|r| r.modes.gc_idle),
                };
                (p.p, b)
            })
            .collect(),
    }
}

/// Runs the experiment.
pub fn run(effort: Effort, ps: &[usize]) -> Fig05 {
    from_data(&run_scaling(effort, ps))
}

/// Derives the figure from an existing scaling sweep.
pub fn from_data(data: &ScalingData) -> Fig05 {
    Fig05 {
        ecperf: mean_modes(&data.ecperf),
        jbb: mean_modes(&data.jbb),
    }
}

impl Fig05 {
    /// Renders the paper's stacked bars as rows.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Figure 5: Execution Mode Breakdown vs Number of Processors (%)",
            &["workload", "P", "user", "system", "io", "idle", "gc-idle"],
        );
        for (name, series) in [("ECperf", &self.ecperf), ("SPECjbb", &self.jbb)] {
            for (p, b) in &series.points {
                t.row(&[
                    name.to_string(),
                    p.to_string(),
                    format!("{:.1}", b.user * 100.0),
                    format!("{:.1}", b.system * 100.0),
                    format!("{:.1}", b.io * 100.0),
                    format!("{:.1}", b.idle * 100.0),
                    format!("{:.1}", b.gc_idle * 100.0),
                ]);
            }
        }
        t
    }

    /// Checks the paper's qualitative claims.
    pub fn shape_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        let first = |s: &ModeSeries| s.points.first().map(|p| p.1).unwrap_or_default();
        let last = |s: &ModeSeries| s.points.last().map(|p| p.1).unwrap_or_default();

        // ECperf system time grows markedly with processors.
        let (e1, eend) = (first(&self.ecperf), last(&self.ecperf));
        if eend.system < e1.system + 0.05 {
            v.push(format!(
                "ECperf system time must grow with P: {:.2} -> {:.2}",
                e1.system, eend.system
            ));
        }
        if e1.system > 0.20 {
            v.push(format!(
                "ECperf 1-processor system time too large: {:.2}",
                e1.system
            ));
        }
        // SPECjbb spends essentially no time in the kernel.
        let jend = last(&self.jbb);
        if jend.system > 0.08 {
            v.push(format!(
                "SPECjbb system time should be tiny: {:.2}",
                jend.system
            ));
        }
        // Significant idle appears on large systems for both workloads.
        if self.jbb.points.last().map(|p| p.0).unwrap_or(0) >= 12 {
            if jend.total_idle() < 0.10 {
                v.push(format!(
                    "SPECjbb large-system idle too small: {:.2}",
                    jend.total_idle()
                ));
            }
            let e = last(&self.ecperf);
            if e.total_idle() + e.system < 0.15 {
                v.push(format!(
                    "ECperf large-system contention (idle+sys) too small: {:.2}",
                    e.total_idle() + e.system
                ));
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_modes_sum_to_one() {
        let f = run(Effort::Quick, &[2]);
        for (_, b) in f.jbb.points.iter().chain(&f.ecperf.points) {
            assert!((b.sum() - 1.0).abs() < 0.02, "mode sum: {}", b.sum());
        }
        assert!(f.table().to_string().contains("Figure 5"));
    }
}
