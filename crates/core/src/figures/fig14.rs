//! Figure 14: distribution of cache-to-cache transfers over touched lines.
//!
//! The paper: communication is extremely concentrated in SPECjbb — all
//! transfers come from just 12% of the cache lines touched in the window,
//! over 70% from the hottest 0.1%, and the single hottest line (a
//! contended lock) carries 20% of everything. ECperf's communication is
//! much *wider*: the hottest line carries 14%, the hottest 0.1% only 56%,
//! and transfers spread over roughly half of the touched lines — its
//! shared entity beans are touched by every thread.

use memsys::{Addr, AddrRange, LineStats};
use simstats::Table;
use workloads::ecperf::{Ecperf, EcperfConfig};
use workloads::specjbb::{SpecJbb, SpecJbbConfig};

use crate::engine::{LineStatsObserver, Machine, MachineConfig};
use crate::experiment::{ExperimentPlan, WORKLOAD_BASE};
use crate::Effort;

/// Heap scale for the communication study. Like Figure 10, this must
/// keep eden far larger than the caches: otherwise the single-threaded
/// collector's copies are still cache-resident when the mutators refetch
/// them, and scaled-GC artifacts swamp the lock lines the paper measures.
const SCALE_DIVISOR: u64 = 8;

/// Concentration metrics for one workload.
#[derive(Debug, Clone)]
pub struct CommFootprint {
    /// Share of transfers from the hottest single line.
    pub hottest_share: f64,
    /// Share of transfers from the hottest 0.1% of touched lines.
    pub share_hot_permille: f64,
    /// Fraction of touched lines that communicate at all.
    pub communicating_fraction: f64,
    /// Distinct lines touched in the window.
    pub touched_lines: u64,
    /// Distinct lines that communicated.
    pub communicating_lines: u64,
    /// Total transfers.
    pub total_c2c: u64,
    /// Per-line counts, hottest first (the CDF's raw series).
    pub counts_desc: Vec<u64>,
}

impl CommFootprint {
    /// Extracts the metrics from a line tracker.
    pub fn from_stats(ls: &LineStats) -> Self {
        CommFootprint {
            hottest_share: ls.hottest_line_share(),
            share_hot_permille: ls.share_from_hottest_fraction(0.001),
            communicating_fraction: ls.fraction_covering_all(),
            touched_lines: ls.touched_lines(),
            communicating_lines: ls.communicating_lines(),
            total_c2c: ls.total_c2c(),
            counts_desc: ls.c2c_counts_desc(),
        }
    }
}

/// The Figure 14 result.
#[derive(Debug, Clone)]
pub struct Fig14 {
    /// ECperf's footprint.
    pub ecperf: CommFootprint,
    /// SPECjbb's footprint.
    pub jbb: CommFootprint,
}

/// Runs the experiment at `pset` processors with a core-per-worker
/// [`ExperimentPlan`].
pub fn run(effort: Effort, pset: usize) -> Fig14 {
    run_with(&ExperimentPlan::new(effort), pset)
}

fn footprint_of<W: workloads::model::Workload>(mut m: Machine<W>, effort: Effort) -> CommFootprint {
    let lines = m.attach_observer(LineStatsObserver::new());
    m.run_until(effort.warmup());
    m.begin_measurement();
    let start = m.time();
    m.run_until(start + effort.window());
    CommFootprint::from_stats(m.observer(lines).stats())
}

/// Runs the experiment at `pset` processors (the paper uses its larger
/// multiprocessor configurations); the two workloads run as independent
/// jobs on the plan's worker pool.
pub fn run_with(plan: &ExperimentPlan, pset: usize) -> Fig14 {
    let effort = plan.effort();
    let mut results = plan
        .run(&[true, false], |&is_jbb| {
            if is_jbb {
                let cfg = SpecJbbConfig::scaled(2 * pset, SCALE_DIVISOR);
                let region = AddrRange::new(Addr(WORKLOAD_BASE), cfg.required_bytes());
                let mut mc = MachineConfig::e6000(pset);
                mc.seed = 1;
                footprint_of(Machine::new(mc, SpecJbb::new(cfg, region)), effort)
            } else {
                let mut cfg = EcperfConfig::scaled(10, SCALE_DIVISOR);
                cfg.threads = (pset * 6).clamp(12, 96);
                cfg.db_connections = (cfg.threads as u32 / 2).max(2);
                let region = AddrRange::new(Addr(WORKLOAD_BASE), cfg.required_bytes());
                let mut mc = MachineConfig::e6000(pset);
                mc.seed = 1;
                footprint_of(Machine::new(mc, Ecperf::new(cfg, region)), effort)
            }
        })
        .into_iter();
    let jbb = results.next().expect("jbb footprint");
    let ecperf = results.next().expect("ecperf footprint");
    Fig14 { ecperf, jbb }
}

impl Fig14 {
    /// Renders the paper's key points of the CDF.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Figure 14: Distribution of Cache-to-Cache Transfers (64-byte lines)",
            &["metric", "ECperf", "SPECjbb"],
        );
        let rows: [(&str, f64, f64); 4] = [
            (
                "hottest line share (%)",
                self.ecperf.hottest_share * 100.0,
                self.jbb.hottest_share * 100.0,
            ),
            (
                "hottest 0.1% of touched lines (%)",
                self.ecperf.share_hot_permille * 100.0,
                self.jbb.share_hot_permille * 100.0,
            ),
            (
                "touched lines that communicate (%)",
                self.ecperf.communicating_fraction * 100.0,
                self.jbb.communicating_fraction * 100.0,
            ),
            (
                "total transfers",
                self.ecperf.total_c2c as f64,
                self.jbb.total_c2c as f64,
            ),
        ];
        for (name, e, j) in rows {
            t.row(&[name.to_string(), format!("{e:.1}"), format!("{j:.1}")]);
        }
        t
    }

    /// Checks the paper's qualitative claims.
    pub fn shape_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        // A few highly contended locks: the hottest line carries a large
        // share in both workloads.
        // The paper reports 14% (ECperf) and 20% (SPECjbb) on the single
        // hottest line. Our ECperf dilutes its hottest line further once
        // the bean working set communicates widely; the check below
        // guards the floor and the SPECjbb-vs-ECperf ordering.
        for (name, f) in [("ECperf", &self.ecperf), ("SPECjbb", &self.jbb)] {
            if f.hottest_share < 0.01 {
                v.push(format!(
                    "{name}: hottest line share too small: {:.1}%",
                    f.hottest_share * 100.0
                ));
            }
            if f.total_c2c == 0 {
                v.push(format!("{name}: no communication recorded"));
            }
        }
        // SPECjbb is more concentrated than ECperf on the hottest line...
        if self.jbb.hottest_share < self.ecperf.hottest_share {
            v.push(format!(
                "SPECjbb's hottest line ({:.1}%) should beat ECperf's ({:.1}%)",
                self.jbb.hottest_share * 100.0,
                self.ecperf.hottest_share * 100.0
            ));
        }
        // ...and ECperf spreads communication over a larger fraction of
        // its touched lines.
        if self.ecperf.communicating_fraction < self.jbb.communicating_fraction {
            v.push(format!(
                "ECperf's communicating fraction ({:.1}%) should exceed SPECjbb's ({:.1}%)",
                self.ecperf.communicating_fraction * 100.0,
                self.jbb.communicating_fraction * 100.0
            ));
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_records_concentrated_communication() {
        let f = run(Effort::Quick, 4);
        assert!(f.jbb.total_c2c > 0);
        assert!(f.ecperf.total_c2c > 0);
        assert!(f.jbb.hottest_share > 0.01, "{:?}", f.jbb.hottest_share);
        assert!(f.table().to_string().contains("Figure 14"));
    }
}
