//! Figure 6: CPI breakdown vs number of processors.
//!
//! The paper: overall CPI ranges from 1.8 to 2.4 for SPECjbb and 2.0 to
//! 2.8 for ECperf — moderate for commercial workloads on in-order
//! processors — rising roughly 33–40% from 1 to 15 processors, with the
//! growth coming almost entirely from data stalls.

use simstats::{fnum, Table};

use crate::figures::scaling::{run_scaling, ScalingData, ScalingPoint};
use crate::Effort;

/// One workload's CPI components per processor count.
#[derive(Debug, Clone)]
pub struct CpiSeries {
    /// `(processors, instr-stall CPI, data-stall CPI, other CPI)`.
    pub points: Vec<(usize, f64, f64, f64)>,
}

impl CpiSeries {
    /// Total CPI at each point.
    pub fn totals(&self) -> Vec<(usize, f64)> {
        self.points
            .iter()
            .map(|(p, i, d, o)| (*p, i + d + o))
            .collect()
    }
}

/// The Figure 6 result.
#[derive(Debug, Clone)]
pub struct Fig06 {
    /// ECperf's series.
    pub ecperf: CpiSeries,
    /// SPECjbb's series.
    pub jbb: CpiSeries,
}

fn series(points: &[ScalingPoint]) -> CpiSeries {
    CpiSeries {
        points: points
            .iter()
            .map(|p| {
                (
                    p.p,
                    p.mean(|r| r.cpi.instr_stall_cpi()),
                    p.mean(|r| r.cpi.data_stall_cpi()),
                    p.mean(|r| r.cpi.other_cpi()),
                )
            })
            .collect(),
    }
}

/// Runs the experiment.
pub fn run(effort: Effort, ps: &[usize]) -> Fig06 {
    from_data(&run_scaling(effort, ps))
}

/// Derives the figure from an existing scaling sweep.
pub fn from_data(data: &ScalingData) -> Fig06 {
    Fig06 {
        ecperf: series(&data.ecperf),
        jbb: series(&data.jbb),
    }
}

impl Fig06 {
    /// Renders the paper's stacked bars as rows.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Figure 6: CPI Breakdown vs Number of Processors",
            &[
                "workload",
                "P",
                "instr stall",
                "data stall",
                "other",
                "total",
            ],
        );
        for (name, s) in [("ECperf", &self.ecperf), ("SPECjbb", &self.jbb)] {
            for (p, i, d, o) in &s.points {
                t.row(&[
                    name.to_string(),
                    p.to_string(),
                    fnum(*i),
                    fnum(*d),
                    fnum(*o),
                    fnum(i + d + o),
                ]);
            }
        }
        t
    }

    /// Checks the paper's qualitative claims.
    pub fn shape_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        for (name, s, lo, hi) in [
            ("ECperf", &self.ecperf, 1.6, 3.4),
            ("SPECjbb", &self.jbb, 1.3, 3.0),
        ] {
            let totals = s.totals();
            let (first, last) = (totals.first().unwrap().1, totals.last().unwrap().1);
            if !(lo..=hi).contains(&first) || !(lo..=hi).contains(&last) {
                v.push(format!(
                    "{name}: CPI out of the paper's band: {first:.2} .. {last:.2}"
                ));
            }
            // The paper sees ~33-40% CPI growth to 15 processors; our
            // compressed transactions reproduce the direction and the
            // data-stall attribution with a smaller magnitude.
            if last < first * 1.05 {
                v.push(format!(
                    "{name}: CPI must grow noticeably with P: {first:.2} -> {last:.2}"
                ));
            }
            // Data stall is the growth component.
            let d_first = s.points.first().unwrap().2;
            let d_last = s.points.last().unwrap().2;
            let growth = last - first;
            if growth > 0.0 && (d_last - d_first) < 0.5 * growth {
                v.push(format!(
                    "{name}: data stall should carry the CPI growth ({:.2} of {:.2})",
                    d_last - d_first,
                    growth
                ));
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_cpi_in_plausible_band() {
        let f = run(Effort::Quick, &[1, 4]);
        for (_, total) in f.jbb.totals() {
            assert!((1.3..4.0).contains(&total), "jbb CPI {total}");
        }
        for (_, total) in f.ecperf.totals() {
            assert!((1.5..4.0).contains(&total), "ecperf CPI {total}");
        }
        assert!(f.table().to_string().contains("Figure 6"));
    }
}
