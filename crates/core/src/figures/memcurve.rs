//! Mess-style bandwidth–latency curves for the banked-DRAM backend.
//!
//! The Mess benchmark methodology characterizes a memory system not by a
//! single latency number but by the full curve of latency vs applied
//! load, one curve per read/write mix: latency is flat near idle, bends
//! as queues form, and blows up at the bandwidth ceiling. A flat-latency
//! model is a horizontal line on this plot — the curve *is* the
//! difference the [`BankedDram`](memsys::BankedDram) backend introduces.
//!
//! Each experiment job drives one backend instance open-loop with a
//! deterministic synthetic request stream (part streaming, part random,
//! a fixed write fraction) at a fixed applied load — a fraction of the
//! channels' aggregate line bandwidth — and reports the read-latency
//! histogram. The address/kind stream is seeded *per mix*, so every load
//! point of a mix replays the identical reference sequence with scaled
//! inter-arrival gaps; queueing theory (the Lindley recursion is
//! monotone in arrival times) then guarantees mean latency is
//! non-decreasing in applied load, which `shape_violations` checks and
//! the acceptance criteria rely on.

use memsys::{Addr, BankedDram, DramConfig, MemoryBackend, LINE_BITS};
use prng::SimRng;
use probes::registry::Snapshot;
use probes::Histogram;
use simstats::Table;

use crate::experiment::{ExperimentPlan, JobTelemetry};
use crate::Effort;

/// Write fractions (percent of requests) — one curve per mix.
pub const WRITE_MIXES: [u32; 3] = [0, 20, 50];

/// Applied load per curve point, in permille of the channels' aggregate
/// line bandwidth. The last point sits just under saturation, where the
/// bounded queues are persistently full and the curve bends hardest.
pub const LOAD_PERMILLE: [u64; 7] = [100, 250, 400, 550, 700, 850, 950];

/// Lines in the synthetic footprint (64 MB at 64 B lines): far beyond
/// the row buffers, so random jumps conflict and streams hit.
const FOOTPRINT_LINES: u64 = 1 << 20;

/// Probability that a request continues the current sequential stream
/// instead of jumping to a random line. Half streaming gives every mix a
/// row-hit population without hiding the conflict cost.
const STREAM_P: f64 = 0.5;

/// One measured point of one curve.
#[derive(Debug, Clone)]
pub struct CurvePoint {
    /// Write percentage of the mix.
    pub write_pct: u32,
    /// Applied load in permille of peak bandwidth.
    pub load_permille: u64,
    /// Mean read latency in cycles.
    pub mean_latency: f64,
    /// Median read latency (log2-bucketed) in cycles.
    pub p50: u64,
    /// 99th-percentile read latency in cycles.
    pub p99: u64,
    /// Fraction of requests hitting an open row.
    pub row_hit_rate: f64,
    /// Requests that found their channel queue full.
    pub queue_stalls: u64,
    /// Reads serviced (histogram population).
    pub reads: u64,
}

/// The bandwidth–latency characterization: `WRITE_MIXES.len()` curves of
/// `LOAD_PERMILLE.len()` points each, in (mix-major) input order.
#[derive(Debug, Clone)]
pub struct MemCurve {
    /// All measured points, grouped by mix, each mix ordered by load.
    pub points: Vec<CurvePoint>,
    /// The DRAM configuration characterized.
    pub dram: DramConfig,
}

/// Requests per curve point at an effort level.
fn requests(effort: Effort) -> u64 {
    match effort {
        Effort::Quick => 20_000,
        Effort::Standard => 100_000,
        Effort::Full => 400_000,
    }
}

/// Drives one backend at one (mix, load) point; returns the point plus
/// the raw counters and read-latency histogram for the run log.
fn drive(
    dram: DramConfig,
    write_pct: u32,
    load_permille: u64,
    n: u64,
) -> (CurvePoint, memsys::DramStats, Histogram) {
    let mut d = BankedDram::new(dram);
    // Seeded per mix only: every load point of a mix replays the same
    // address/kind sequence, which is what makes the curve provably
    // monotone in load.
    let mut rng = SimRng::seed_from_u64(0xC0FFEE ^ u64::from(write_pct));
    let mut stream_line = 0u64;
    // Mean inter-arrival gap for an applied load of `load_permille/1000`
    // of peak: peak is one line per `channel_cycles / channels` cycles.
    let gap_num = dram.channel_cycles * 1000;
    let gap_den = u64::from(dram.channels) * load_permille;
    for i in 0..n {
        let now = i * gap_num / gap_den;
        let line = if rng.gen_f64() < STREAM_P {
            stream_line = (stream_line + 1) % FOOTPRINT_LINES;
            stream_line
        } else {
            stream_line = rng.bounded_u64(FOOTPRINT_LINES);
            stream_line
        };
        let addr = Addr(line << LINE_BITS);
        if rng.gen_bool(f64::from(write_pct) / 100.0) {
            d.writeback(addr, now);
        } else {
            d.fetch(addr, now);
        }
    }
    let hist = d.hist().clone();
    let s = *d.stats();
    let point = CurvePoint {
        write_pct,
        load_permille,
        mean_latency: hist.mean(),
        p50: hist.p50(),
        p99: hist.p99(),
        row_hit_rate: s.row_hit_rate(),
        queue_stalls: s.queue_stalls,
        reads: s.reads,
    };
    (point, s, hist)
}

/// Runs the characterization with a fresh plan at `effort`.
pub fn run(effort: Effort) -> MemCurve {
    run_with(&ExperimentPlan::new(effort))
}

/// Runs the characterization as jobs of an existing plan (one job per
/// curve point). Each job's DRAM counters ride on its span and its
/// read-latency histogram streams into the run log as
/// `dram.queue_latency`, so `simreport --simstat` can render the curve
/// straight from `RUNLOG_figures.jsonl`.
pub fn run_with(plan: &ExperimentPlan) -> MemCurve {
    let dram = DramConfig::default();
    // The backend is driven open-loop (no machine to fast-forward), so
    // sampled mode shortens the deterministic request stream instead —
    // each point keeps the same seeded sequence, just truncated.
    let n = match plan.mode() {
        crate::engine::SimMode::Full => requests(plan.effort()),
        crate::engine::SimMode::Sampled(_) => (requests(plan.effort()) / 16).max(5_000),
    };
    let jobs: Vec<(u32, u64)> = WRITE_MIXES
        .iter()
        .flat_map(|&w| LOAD_PERMILLE.iter().map(move |&l| (w, l)))
        .collect();
    let labels = jobs
        .iter()
        .map(|(w, l)| format!("memcurve:w{w}:l{l}"))
        .collect();
    let points = plan.clone().with_job_labels(labels).run_telemetry(
        &jobs,
        // Higher loads service the same request count in less virtual
        // time but queue more; wall cost is flat, so hint by position.
        |_| 1,
        |&(write_pct, load_permille)| {
            let (point, stats, hist) = drive(dram, write_pct, load_permille, n);
            let mut snap = Snapshot::new();
            snap.record(&stats);
            let tele = JobTelemetry {
                counters: Some(snap),
                hists: vec![("dram.queue_latency".to_string(), hist)],
                ..JobTelemetry::default()
            };
            (point, tele)
        },
    );
    MemCurve { points, dram }
}

impl MemCurve {
    /// The points of one mix, in load order.
    pub fn mix(&self, write_pct: u32) -> Vec<&CurvePoint> {
        self.points
            .iter()
            .filter(|p| p.write_pct == write_pct)
            .collect()
    }

    /// Renders the curves.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "Bandwidth-Latency Curves (BankedDram: {} ch x {} banks, hit {} / conflict {})",
                self.dram.channels, self.dram.banks, self.dram.t_row_hit, self.dram.t_row_conflict
            ),
            &[
                "writes",
                "load",
                "mean lat",
                "p50",
                "p99",
                "row hits",
                "queue stalls",
            ],
        );
        for p in &self.points {
            t.row(&[
                format!("{}%", p.write_pct),
                format!("{:.1}%", p.load_permille as f64 / 10.0),
                format!("{:.1}", p.mean_latency),
                p.p50.to_string(),
                p.p99.to_string(),
                format!("{:.2}", p.row_hit_rate),
                p.queue_stalls.to_string(),
            ]);
        }
        t
    }

    /// The curves as CSV (the `MEMCURVE.csv` artifact).
    pub fn csv(&self) -> String {
        let mut s = String::from(
            "write_pct,load_permille,mean_latency,p50,p99,row_hit_rate,queue_stalls,reads\n",
        );
        for p in &self.points {
            s.push_str(&format!(
                "{},{},{:.2},{},{},{:.4},{},{}\n",
                p.write_pct,
                p.load_permille,
                p.mean_latency,
                p.p50,
                p.p99,
                p.row_hit_rate,
                p.queue_stalls,
                p.reads
            ));
        }
        s
    }

    /// The Mess shape: within each mix, mean latency is monotonically
    /// non-decreasing in applied load, and the loaded end of the curve
    /// sits well above the unloaded end (the curve actually bends).
    pub fn shape_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        for &w in &WRITE_MIXES {
            let mix = self.mix(w);
            if mix.len() != LOAD_PERMILLE.len() {
                v.push(format!(
                    "mix {w}% has {} of {} points",
                    mix.len(),
                    LOAD_PERMILLE.len()
                ));
                continue;
            }
            for pair in mix.windows(2) {
                if pair[1].mean_latency < pair[0].mean_latency {
                    v.push(format!(
                        "mix {w}%: latency fell with load ({:.1} @ {} -> {:.1} @ {})",
                        pair[0].mean_latency,
                        pair[0].load_permille,
                        pair[1].mean_latency,
                        pair[1].load_permille
                    ));
                }
            }
            let (first, last) = (mix[0], mix[mix.len() - 1]);
            if last.mean_latency < first.mean_latency * 1.5 {
                v.push(format!(
                    "mix {w}%: curve barely bends ({:.1} -> {:.1})",
                    first.mean_latency, last.mean_latency
                ));
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_curves_are_monotone_and_bend() {
        let c = run(Effort::Quick);
        assert_eq!(c.points.len(), WRITE_MIXES.len() * LOAD_PERMILLE.len());
        assert_eq!(c.shape_violations(), Vec::<String>::new());
        assert!(c.csv().lines().count() == c.points.len() + 1);
        assert!(c.table().to_string().contains("Bandwidth-Latency"));
    }

    #[test]
    fn serial_and_parallel_runs_agree() {
        let serial = ExperimentPlan::serial(Effort::Quick);
        let parallel = ExperimentPlan::new(Effort::Quick).with_threads(4);
        let a = run_with(&serial);
        let b = run_with(&parallel);
        for (x, y) in a.points.iter().zip(&b.points) {
            assert_eq!(x.mean_latency.to_bits(), y.mean_latency.to_bits());
            assert_eq!(x.queue_stalls, y.queue_stalls);
        }
    }

    #[test]
    fn writes_steal_read_bandwidth() {
        let c = run(Effort::Quick);
        // At the loaded end, the write-heavy mix's reads wait behind
        // write transfers they share channels with.
        let ro = c.mix(0)[LOAD_PERMILLE.len() - 1].mean_latency;
        let rw = c.mix(50)[LOAD_PERMILLE.len() - 1].mean_latency;
        assert!(
            rw > ro * 0.5,
            "write-heavy reads should still queue: ro={ro:.1} rw={rw:.1}"
        );
    }
}
