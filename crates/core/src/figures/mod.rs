//! One experiment per measured figure of the paper.
//!
//! Each submodule regenerates one figure: it runs the relevant workload
//! configurations, returns a typed result, renders the same series the
//! paper plots as a text table, and knows the paper's qualitative
//! expectations (`shape_violations` returns an empty list when the
//! reproduction preserves the published shape).
//!
//! | Module | Paper figure |
//! |---|---|
//! | [`fig04`] | Throughput scaling on the E6000 |
//! | [`fig05`] | Execution-mode breakdown vs processors |
//! | [`fig06`] | CPI breakdown vs processors |
//! | [`fig07`] | Data-stall-time breakdown vs processors |
//! | [`fig08`] | Cache-to-cache transfer ratio |
//! | [`fig09`] | Effect of garbage collection on scaling |
//! | [`fig10`] | Cache-to-cache transfers over time (GC collapse) |
//! | [`fig11`] | Memory use vs scale factor |
//! | [`fig12`] | Instruction-cache miss rate vs cache size |
//! | [`fig13`] | Data-cache miss rate vs cache size |
//! | [`fig14`] | Distribution of cache-to-cache transfers (percent) |
//! | [`fig15`] | Distribution of cache-to-cache transfers (absolute) |
//! | [`fig16`] | Shared-cache miss rates (CMP topologies) |
//! | [`ablations`] | ISM pages, path length, object cache, c2c latency, memory backend |
//! | [`attrib`] | Figure-7-style CPI stacks with the GC/mutator and heap-region split |
//! | [`memcurve`] | Mess-style bandwidth–latency curves (BankedDram) |
//! | [`validate`] | Sampled-vs-full differential validation (error bound) |

pub mod ablations;
pub mod attrib;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod memcurve;
pub mod scaling;
pub mod validate;

/// The paper's processor axis for the scaling figures (4–8).
pub const PAPER_PROCESSORS: [usize; 9] = [1, 2, 4, 6, 8, 10, 12, 14, 15];

/// A reduced axis for quick runs.
pub const QUICK_PROCESSORS: [usize; 5] = [1, 2, 4, 8, 12];

/// Picks the processor axis for an effort level.
pub fn processor_axis(effort: crate::Effort) -> &'static [usize] {
    match effort {
        crate::Effort::Quick => &QUICK_PROCESSORS,
        _ => &PAPER_PROCESSORS,
    }
}
