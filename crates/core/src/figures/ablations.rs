//! Ablations and secondary claims from the paper's text.
//!
//! - **ISM pages** (Sections 3.2 / 6): enabling Intimate Shared Memory
//!   (4 MB pages instead of 8 KB) improved ECperf by more than 10% by
//!   extending TLB reach over the large heap.
//! - **Path length** (Section 4.4): ECperf's instructions per BBop
//!   *decrease* as processors are added — object-level caching lets one
//!   thread reuse entities another fetched — which is how CPI can rise
//!   while throughput scales super-linearly.
//! - **Object cache** (Section 4.4's hypothesis): disabling the cache's
//!   constructive interference removes that effect.
//! - **Cache-to-cache latency** (Section 4.3): the E6000 pays ~40% over
//!   memory latency; directory-based NUMA systems pay 200–300%. The
//!   higher the penalty, the more the sharing-heavy workloads suffer.
//! - **Memory backend** (Mess/Ramulator re-evaluation): replacing the
//!   flat ~75-cycle memory with the banked-DRAM timing model makes
//!   memory latency load-dependent, which taxes exactly the misses the
//!   Figure 4/5 scaling stories are built on.

use memsys::{Addr, AddrRange, DramConfig, MemoryConfig};
use simcpu::LatencyTable;
use simstats::{fnum, Table};
use sysos::tlb::TlbConfig;
use workloads::ecperf::{Ecperf, EcperfConfig};

use crate::engine::{Machine, MachineConfig};
use crate::experiment::{ecperf_machine, measure, ExperimentPlan, WORKLOAD_BASE};
use crate::Effort;

/// ISM ablation result.
#[derive(Debug, Clone)]
pub struct IsmAblation {
    /// Throughput with 8 KB base pages.
    pub base_pages: f64,
    /// Throughput with 4 MB ISM pages.
    pub ism_pages: f64,
}

impl IsmAblation {
    /// Relative gain from ISM.
    pub fn gain(&self) -> f64 {
        if self.base_pages <= 0.0 {
            0.0
        } else {
            self.ism_pages / self.base_pages - 1.0
        }
    }

    /// Renders the comparison.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Ablation: Intimate Shared Memory (ECperf, 1 processor)",
            &["pages", "throughput (BBops/s)", "gain"],
        );
        t.row(&["8 KB".into(), fnum(self.base_pages), String::new()]);
        t.row(&[
            "4 MB (ISM)".into(),
            fnum(self.ism_pages),
            format!("{:+.1}%", self.gain() * 100.0),
        ]);
        t
    }

    /// The paper reports >10% from ISM. Our compressed BBops touch far
    /// fewer pages per unit of work than the real application server, so
    /// the modeled gain is smaller; the check guards the *direction*.
    pub fn shape_violations(&self) -> Vec<String> {
        if self.gain() < 0.005 {
            vec![format!(
                "ISM gain too small: {:+.1}% (paper: >10%)",
                self.gain() * 100.0
            )]
        } else {
            Vec::new()
        }
    }
}

/// Runs the ISM ablation on a uniprocessor ECperf at *full* size: TLB
/// reach only matters against the real heap (the paper's point is that
/// 64 x 8 KB of reach is nothing next to a 1.4 GB-heap application
/// server).
pub fn run_ism(effort: Effort) -> IsmAblation {
    let plan = ExperimentPlan::new(effort);
    let tlbs = [TlbConfig::base_pages(), TlbConfig::ism_pages()];
    let tputs = plan.run(&tlbs, |&tlb| {
        let cfg = EcperfConfig::full(10);
        let region = AddrRange::new(Addr(WORKLOAD_BASE), cfg.required_bytes());
        let mut mc = MachineConfig::e6000(1);
        mc.tlb = Some(tlb);
        mc.seed = 1;
        let mut m = Machine::new(mc, Ecperf::new(cfg, region));
        m.run_until(4 * effort.window());
        m.begin_measurement();
        let start = m.time();
        m.run_until(start + 4 * effort.window());
        m.window_report().throughput()
    });
    IsmAblation {
        base_pages: tputs[0],
        ism_pages: tputs[1],
    }
}

/// Path-length result: `(processors, instructions per BBop, DB round
/// trips per BBop, bean-cache hit rate)`.
#[derive(Debug, Clone)]
pub struct PathLength {
    /// The series over processor counts.
    pub points: Vec<(usize, f64, f64, f64)>,
}

/// Runs the path-length experiment over `ps`.
pub fn run_path_length(effort: Effort, ps: &[usize]) -> PathLength {
    let plan = ExperimentPlan::new(effort);
    let points = plan.run(ps, |&p| {
        let mut m = ecperf_machine(p, 1, effort);
        let r = measure(&mut m, effort);
        let wl = m.workload();
        let tx = wl.total_tx().max(1);
        (
            p,
            r.cpi.instructions as f64 / r.transactions.max(1) as f64,
            wl.db_roundtrips() as f64 / tx as f64,
            wl.cache().stats().hit_rate(),
        )
    });
    PathLength { points }
}

impl PathLength {
    /// Renders the series.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Ablation: ECperf Path Length vs Processors (Section 4.4)",
            &["P", "instr/BBop", "DB roundtrips/BBop", "cache hit rate"],
        );
        for (p, i, rt, hr) in &self.points {
            t.row(&[
                p.to_string(),
                format!("{i:.0}"),
                format!("{rt:.2}"),
                format!("{hr:.3}"),
            ]);
        }
        t
    }

    /// The paper: instructions per BBop decrease as processors are added.
    pub fn shape_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        let (Some(first), Some(last)) = (self.points.first(), self.points.last()) else {
            return vec!["empty series".into()];
        };
        if last.1 >= first.1 {
            v.push(format!(
                "instructions per BBop must fall with P: {:.0} -> {:.0}",
                first.1, last.1
            ));
        }
        if last.3 <= first.3 {
            v.push(format!(
                "bean-cache hit rate must rise with P: {:.3} -> {:.3}",
                first.3, last.3
            ));
        }
        v
    }
}

/// Object-cache ablation: ECperf speedup at `p` processors with the
/// bean cache's TTL intact vs effectively disabled.
#[derive(Debug, Clone)]
pub struct ObjCacheAblation {
    /// Speedup 1 -> p with the cache.
    pub with_cache: f64,
    /// Speedup 1 -> p with a zero-TTL (always-revalidate) cache.
    pub without_cache: f64,
    /// The processor count compared.
    pub p: usize,
}

/// Runs the object-cache ablation.
pub fn run_objcache(effort: Effort, p: usize) -> ObjCacheAblation {
    let plan = ExperimentPlan::new(effort);
    let ttl = EcperfConfig::full(10).cache_ttl;
    let jobs = [(ttl, p), (ttl, 1), (0, p), (0, 1)];
    let tputs = plan.run(&jobs, |&(ttl, pset)| {
        let mut cfg = EcperfConfig::scaled(10, effort.scale_divisor());
        cfg.threads = (pset * 6).clamp(12, 96);
        cfg.db_connections = (cfg.threads as u32 / 2).max(2);
        cfg.cache_ttl = ttl;
        let region = AddrRange::new(Addr(WORKLOAD_BASE), cfg.required_bytes());
        let mut mc = MachineConfig::e6000(pset);
        mc.seed = 1;
        let mut m = Machine::new(mc, Ecperf::new(cfg, region));
        measure(&mut m, effort).throughput()
    });
    ObjCacheAblation {
        with_cache: tputs[0] / tputs[1].max(f64::MIN_POSITIVE),
        without_cache: tputs[2] / tputs[3].max(f64::MIN_POSITIVE),
        p,
    }
}

impl ObjCacheAblation {
    /// Renders the comparison.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "Ablation: Object-Level Caching and ECperf Scaling (1 -> {}p)",
                self.p
            ),
            &["configuration", "speedup"],
        );
        t.row(&["object cache (TTL on)".into(), fnum(self.with_cache)]);
        t.row(&["revalidate always (TTL=0)".into(), fnum(self.without_cache)]);
        t
    }

    /// The constructive-interference speedup should depend on the cache.
    pub fn shape_violations(&self) -> Vec<String> {
        if self.with_cache <= self.without_cache {
            vec![format!(
                "cache must improve scaling: with {:.2} vs without {:.2}",
                self.with_cache, self.without_cache
            )]
        } else {
            Vec::new()
        }
    }
}

/// Cache-to-cache latency sensitivity: throughput at `p` processors under
/// increasing remote-fetch penalties.
#[derive(Debug, Clone)]
pub struct C2cLatency {
    /// `(c2c/memory latency factor, SPECjbb throughput, ECperf throughput)`.
    pub points: Vec<(f64, f64, f64)>,
    /// The processor count used.
    pub p: usize,
}

/// Runs the latency-sensitivity sweep.
pub fn run_c2c_latency(effort: Effort, p: usize) -> C2cLatency {
    let plan = ExperimentPlan::new(effort);
    let factors = [1.0, 1.4, 2.5];
    let jobs: Vec<(f64, bool)> = factors
        .iter()
        .flat_map(|&f| [(f, true), (f, false)])
        .collect();
    let tputs = plan.run(&jobs, |&(f, is_jbb)| {
        let lat = LatencyTable::e6000().with_c2c_factor(f);
        if is_jbb {
            let cfg = workloads::specjbb::SpecJbbConfig::scaled(2 * p, effort.scale_divisor());
            let region = AddrRange::new(Addr(WORKLOAD_BASE), cfg.required_bytes());
            let mut mc = MachineConfig::e6000(p);
            mc.latency = lat;
            mc.seed = 1;
            let mut m = Machine::new(mc, workloads::specjbb::SpecJbb::new(cfg, region));
            measure(&mut m, effort).throughput()
        } else {
            let mut cfg = EcperfConfig::scaled(10, effort.scale_divisor());
            cfg.threads = (p * 6).clamp(12, 96);
            cfg.db_connections = (cfg.threads as u32 / 2).max(2);
            let region = AddrRange::new(Addr(WORKLOAD_BASE), cfg.required_bytes());
            let mut mc = MachineConfig::e6000(p);
            mc.latency = lat;
            mc.seed = 1;
            let mut m = Machine::new(mc, Ecperf::new(cfg, region));
            measure(&mut m, effort).throughput()
        }
    });
    let points = factors
        .iter()
        .enumerate()
        .map(|(i, &f)| (f, tputs[2 * i], tputs[2 * i + 1]))
        .collect();
    C2cLatency { points, p }
}

impl C2cLatency {
    /// Renders the sweep.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "Ablation: Cache-to-Cache Latency Sensitivity ({} processors)",
                self.p
            ),
            &["c2c / memory", "SPECjbb tput", "ECperf tput"],
        );
        for (f, j, e) in &self.points {
            t.row(&[format!("{f:.1}x"), fnum(*j), fnum(*e)]);
        }
        t
    }

    /// Higher penalties must not help.
    pub fn shape_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        for w in self.points.windows(2) {
            if w[1].1 > w[0].1 * 1.05 {
                v.push("SPECjbb throughput rose with c2c latency".into());
            }
            if w[1].2 > w[0].2 * 1.05 {
                v.push("ECperf throughput rose with c2c latency".into());
            }
        }
        v
    }
}

/// Memory-backend ablation: one workload's throughput under the flat
/// table vs the banked-DRAM timing model, at one and at `p` processors.
#[derive(Debug, Clone)]
pub struct MemBackendAblation {
    /// `(processors, flat throughput, DRAM throughput)`.
    pub points: Vec<(usize, f64, f64)>,
    /// The scaled-up processor count.
    pub p: usize,
    /// The workload swept ("SPECjbb" or "ECperf").
    pub workload: &'static str,
}

/// Runs the flat-vs-DRAM ablation on SPECjbb.
pub fn run_mem_backend(effort: Effort, p: usize) -> MemBackendAblation {
    run_mem_backend_in(effort, p, true)
}

/// Runs the flat-vs-DRAM ablation on ECperf. The paper's two workloads
/// stress memory differently — ECperf's smaller footprint and its DB
/// round-trip waits hide part of the DRAM queueing penalty that SPECjbb
/// eats directly — so the ablation is reported for both.
pub fn run_mem_backend_ecperf(effort: Effort, p: usize) -> MemBackendAblation {
    run_mem_backend_in(effort, p, false)
}

fn run_mem_backend_in(effort: Effort, p: usize, jbb: bool) -> MemBackendAblation {
    let plan = ExperimentPlan::new(effort);
    let dram = MemoryConfig::BankedDram(DramConfig::default());
    let jobs = [
        (MemoryConfig::Flat, 1),
        (MemoryConfig::Flat, p),
        (dram, 1),
        (dram, p),
    ];
    let tputs = plan.run(&jobs, |&(memory, pset)| {
        if jbb {
            let cfg = workloads::specjbb::SpecJbbConfig::scaled(2 * pset, effort.scale_divisor());
            let region = AddrRange::new(Addr(WORKLOAD_BASE), cfg.required_bytes());
            let mut mc = MachineConfig::e6000(pset);
            mc.hierarchy.memory = memory;
            mc.seed = 1;
            let mut m = Machine::new(mc, workloads::specjbb::SpecJbb::new(cfg, region));
            measure(&mut m, effort).throughput()
        } else {
            let mut cfg = EcperfConfig::scaled(10, effort.scale_divisor());
            cfg.threads = (pset * 6).clamp(12, 96);
            cfg.db_connections = (cfg.threads as u32 / 2).max(2);
            let region = AddrRange::new(Addr(WORKLOAD_BASE), cfg.required_bytes());
            let mut mc = MachineConfig::e6000(pset);
            mc.hierarchy.memory = memory;
            mc.seed = 1;
            let mut m = Machine::new(mc, Ecperf::new(cfg, region));
            measure(&mut m, effort).throughput()
        }
    });
    MemBackendAblation {
        points: vec![(1, tputs[0], tputs[2]), (p, tputs[1], tputs[3])],
        p,
        workload: if jbb { "SPECjbb" } else { "ECperf" },
    }
}

impl MemBackendAblation {
    /// Speedup 1 -> p under one backend column.
    fn speedup(&self, dram: bool) -> f64 {
        let pick = |t: &(usize, f64, f64)| if dram { t.2 } else { t.1 };
        let base = pick(&self.points[0]).max(f64::MIN_POSITIVE);
        pick(&self.points[self.points.len() - 1]) / base
    }

    /// Renders the comparison.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "Ablation: Flat vs Banked-DRAM Memory ({}, 1 and {}p)",
                self.workload, self.p
            ),
            &["P", "flat tput", "DRAM tput", "DRAM/flat"],
        );
        for (p, flat, dram) in &self.points {
            t.row(&[
                p.to_string(),
                fnum(*flat),
                fnum(*dram),
                format!("{:.2}", dram / flat.max(f64::MIN_POSITIVE)),
            ]);
        }
        t.row(&[
            "speedup".into(),
            format!("{:.2}", self.speedup(false)),
            format!("{:.2}", self.speedup(true)),
            String::new(),
        ]);
        t
    }

    /// Contention can only tax throughput: the DRAM model must not beat
    /// flat memory, and both backends must still scale.
    pub fn shape_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        for (p, flat, dram) in &self.points {
            if *dram > flat * 1.02 {
                v.push(format!(
                    "DRAM contention helped at {p}p: {dram:.1} vs flat {flat:.1}"
                ));
            }
        }
        if self.speedup(true) <= 1.0 {
            v.push(format!(
                "scaling must survive the DRAM model: speedup {:.2}",
                self.speedup(true)
            ));
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ism_ablation_shows_gain() {
        let a = run_ism(Effort::Quick);
        assert!(
            a.gain() > 0.0,
            "ISM should help: {} -> {}",
            a.base_pages,
            a.ism_pages
        );
    }
}
