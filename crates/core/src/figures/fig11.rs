//! Figure 11: memory use vs scale factor.
//!
//! The paper: SPECjbb's live memory (heap occupancy immediately after
//! collection) grows *linearly* with the warehouse count up to about 30,
//! because the emulated database is in-heap; ECperf's grows only until an
//! Orders Injection Rate of about 6 and then stays roughly constant
//! through 40 — the database lives on another machine and the middle
//! tier's footprint is bounded by its pools and caches. Relying on
//! SPECjbb would therefore *overestimate* middleware memory footprints.
//!
//! Reference-driven runs use a scaled heap; reported values are scaled
//! back to the paper's real geometry (both the heap spaces and the data
//! were divided by the same factor, so the ratio is preserved).

use memsys::{Addr, AddrRange};
use simstats::Table;
use workloads::ecperf::{Ecperf, EcperfConfig};
use workloads::specjbb::{SpecJbb, SpecJbbConfig};

use crate::engine::{Machine, MachineConfig};
use crate::experiment::{ExperimentPlan, WORKLOAD_BASE};
use crate::Effort;

/// The Figure 11 result: `(scale factor, live MB after GC)` per workload.
#[derive(Debug, Clone)]
pub struct Fig11 {
    /// SPECjbb: scale factor = warehouses.
    pub jbb: Vec<(u32, f64)>,
    /// ECperf: scale factor = Orders Injection Rate.
    pub ecperf: Vec<(u32, f64)>,
}

/// The paper's scale-factor axis.
pub const PAPER_SCALE_AXIS: [u32; 9] = [1, 2, 5, 8, 12, 16, 20, 30, 40];

/// A reduced axis for quick runs.
pub const QUICK_SCALE_AXIS: [u32; 5] = [1, 4, 8, 16, 30];

fn run_until_gcs<W: workloads::model::Workload>(
    m: &mut Machine<W>,
    effort: Effort,
    min_gcs: u64,
) -> Option<u64> {
    let mut horizon = effort.warmup();
    let limit = effort.warmup() + 6 * effort.window();
    loop {
        m.run_until(horizon);
        if m.gc_count() >= min_gcs {
            return m.workload().heap_after_last_gc();
        }
        if horizon >= limit {
            return m.workload().heap_after_last_gc();
        }
        horizon += effort.window();
    }
}

/// Runs the experiment over `axis` (default [`PAPER_SCALE_AXIS`]) with a
/// core-per-worker [`ExperimentPlan`].
pub fn run(effort: Effort, axis: &[u32]) -> Fig11 {
    run_with(&ExperimentPlan::new(effort), axis)
}

/// Runs the experiment over `axis`: each scale factor of each workload is
/// one independent job on the plan's worker pool.
pub fn run_with(plan: &ExperimentPlan, axis: &[u32]) -> Fig11 {
    let effort = plan.effort();
    let divisor = effort.scale_divisor();
    let pset = 4;
    let jobs: Vec<(bool, u32)> = [true, false]
        .iter()
        .flat_map(|&is_jbb| axis.iter().map(move |&s| (is_jbb, s)))
        .collect();
    let mut results = plan
        .run(&jobs, |&(is_jbb, scale)| {
            let after = if is_jbb {
                let cfg = SpecJbbConfig::scaled(scale as usize, divisor);
                let region = AddrRange::new(Addr(WORKLOAD_BASE), cfg.required_bytes());
                let mut mc = MachineConfig::e6000(pset);
                mc.seed = 1;
                let mut m = Machine::new(mc, SpecJbb::new(cfg, region));
                run_until_gcs(&mut m, effort, 2).unwrap_or(0)
            } else {
                let cfg = EcperfConfig::scaled(scale, divisor);
                let region = AddrRange::new(Addr(WORKLOAD_BASE), cfg.required_bytes());
                let mut mc = MachineConfig::e6000(pset);
                mc.seed = 1;
                let mut m = Machine::new(mc, Ecperf::new(cfg, region));
                run_until_gcs(&mut m, effort, 2).unwrap_or(0)
            };
            (scale, (after * divisor) as f64 / (1 << 20) as f64)
        })
        .into_iter();
    let jbb = axis
        .iter()
        .map(|_| results.next().expect("jbb point"))
        .collect();
    let ecperf = axis
        .iter()
        .map(|_| results.next().expect("ecperf point"))
        .collect();
    Fig11 { jbb, ecperf }
}

impl Fig11 {
    /// Renders the paper's series.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Figure 11: Memory Use vs Scale Factor (live MB after GC, real-geometry scale)",
            &["scale", "ECperf (MB)", "SPECjbb (MB)"],
        );
        for (j, e) in self.jbb.iter().zip(&self.ecperf) {
            t.row(&[
                j.0.to_string(),
                format!("{:.0}", e.1),
                format!("{:.0}", j.1),
            ]);
        }
        t
    }

    /// Checks the paper's qualitative claims.
    pub fn shape_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        // SPECjbb grows roughly linearly in the warehouse count. The
        // smallest configurations are dominated by warehouse-independent
        // data (the shared item catalog, pools, code), so linearity is
        // checked from scale 4 upward.
        let jbb_pre30: Vec<_> = self
            .jbb
            .iter()
            .filter(|p| (4..=30).contains(&p.0))
            .collect();
        if let (Some(first), Some(last)) = (jbb_pre30.first(), jbb_pre30.last()) {
            let scale_ratio = last.0 as f64 / first.0 as f64;
            let mem_ratio = last.1 / first.1.max(1.0);
            if mem_ratio < 0.4 * scale_ratio {
                v.push(format!(
                    "SPECjbb memory must grow ~linearly with warehouses: x{scale_ratio:.0} \
                     scale gave only x{mem_ratio:.1} memory"
                ));
            }
        }
        // ECperf flattens: beyond IR 8 the growth is small.
        let ec_big: Vec<_> = self.ecperf.iter().filter(|p| p.0 >= 8).collect();
        if let (Some(first), Some(last)) = (ec_big.first(), ec_big.last()) {
            if last.1 > first.1 * 1.6 + 16.0 {
                v.push(format!(
                    "ECperf memory must stay roughly constant past IR 8: {:.0} -> {:.0} MB",
                    first.1, last.1
                ));
            }
        }
        // At large scale SPECjbb's footprint far exceeds ECperf's.
        if let (Some(j), Some(e)) = (self.jbb.last(), self.ecperf.last()) {
            if j.1 < 2.0 * e.1 {
                v.push(format!(
                    "SPECjbb at scale {} ({:.0} MB) should dwarf ECperf ({:.0} MB)",
                    j.0, j.1, e.1
                ));
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_three_point_run_shows_divergence() {
        let f = run(Effort::Quick, &[2, 16]);
        assert_eq!(f.jbb.len(), 2);
        let jbb_growth = f.jbb[1].1 / f.jbb[0].1.max(1.0);
        let ec_growth = f.ecperf[1].1 / f.ecperf[0].1.max(1.0);
        assert!(
            jbb_growth > 1.5 * ec_growth,
            "jbb x{jbb_growth:.2} vs ecperf x{ec_growth:.2}"
        );
        assert!(f.table().to_string().contains("Figure 11"));
    }
}
