//! Figure 4: throughput scaling on a Sun E6000.
//!
//! The paper: ECperf scales super-linearly from 1 to 8 processors,
//! peaks at a speedup of roughly 10 on 12 processors and degrades beyond;
//! SPECjbb climbs more gradually and levels off around 7 from 10
//! processors on. Neither gets close to linear at 15 processors.

use simstats::{fnum, Table};

use crate::figures::scaling::{run_scaling, ScalingData};
use crate::Effort;

/// The Figure 4 result: speedup curves for both workloads.
#[derive(Debug, Clone)]
pub struct Fig04 {
    /// `(processors, speedup)` for SPECjbb.
    pub jbb: Vec<(usize, f64)>,
    /// `(processors, speedup)` for ECperf.
    pub ecperf: Vec<(usize, f64)>,
}

/// Runs the experiment.
pub fn run(effort: Effort, ps: &[usize]) -> Fig04 {
    from_data(&run_scaling(effort, ps))
}

/// Derives the figure from an existing scaling sweep.
pub fn from_data(data: &ScalingData) -> Fig04 {
    Fig04 {
        jbb: ScalingData::speedups(&data.jbb),
        ecperf: ScalingData::speedups(&data.ecperf),
    }
}

impl Fig04 {
    /// Renders the paper's series.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Figure 4: Throughput Scaling on a Sun E6000 (speedup vs 1 processor)",
            &["P", "ECperf", "SPECjbb", "linear"],
        );
        for (j, e) in self.jbb.iter().zip(&self.ecperf) {
            t.row(&[j.0.to_string(), fnum(e.1), fnum(j.1), fnum(j.0 as f64)]);
        }
        t
    }

    /// Checks the paper's qualitative claims; returns human-readable
    /// violations (empty = shape preserved).
    pub fn shape_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        let last = |s: &[(usize, f64)]| s.last().copied().unwrap_or((1, 1.0));
        let at = |s: &[(usize, f64)], p: usize| s.iter().find(|x| x.0 == p).map(|x| x.1);

        // Both workloads end far from linear speedup.
        for (name, series) in [("SPECjbb", &self.jbb), ("ECperf", &self.ecperf)] {
            let (p, s) = last(series);
            if p >= 12 && s > 0.75 * p as f64 {
                v.push(format!(
                    "{name}: speedup {s:.1} at {p}p is too close to linear"
                ));
            }
            if p >= 12 && s < 3.0 {
                v.push(format!("{name}: speedup {s:.1} at {p}p is implausibly low"));
            }
        }
        // SPECjbb levels off: the last point gains little over 12p.
        if let (Some(s12), Some(send)) = (at(&self.jbb, 12), Some(last(&self.jbb).1)) {
            if send > s12 * 1.25 {
                v.push(format!(
                    "SPECjbb keeps scaling after 12p ({s12:.1} -> {send:.1})"
                ));
            }
        }
        // ECperf outpaces SPECjbb in relative speedup through 8 processors.
        if let (Some(e8), Some(j8)) = (at(&self.ecperf, 8), at(&self.jbb, 8)) {
            if e8 < j8 * 0.9 {
                v.push(format!(
                    "ECperf speedup at 8p ({e8:.1}) should be at least SPECjbb's ({j8:.1})"
                ));
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_two_point_run_produces_monotone_speedup() {
        let f = run(Effort::Quick, &[1, 4]);
        assert_eq!(f.jbb.len(), 2);
        assert!((f.jbb[0].1 - 1.0).abs() < 1e-9);
        assert!(f.jbb[1].1 > 1.5, "4p must beat 1p: {:?}", f.jbb);
        assert!(f.ecperf[1].1 > 1.5, "4p must beat 1p: {:?}", f.ecperf);
        let t = f.table().to_string();
        assert!(t.contains("Figure 4"));
    }
}
