//! Sampled-vs-full differential validation.
//!
//! The sampled spine's whole claim is that signature-picked units plus
//! functional warming reproduce whole-window behavior within a small
//! error; this module *measures* that claim instead of assuming it. A
//! matrix of short configurations runs twice — once every-cycle, once
//! through the sampled path — and the figure metrics the suite leans on
//! (CPI, L1/L2 miss rates, response-time p50/p95) are compared under a
//! relative-error bound. CI runs this at quick effort and fails the
//! build when any metric drifts past [`ERROR_BOUND`]; the full
//! comparison lands in `SAMPLED_VALIDATION.csv`.
//!
//! Both executions are bit-deterministic, so the recorded errors are
//! properties of the *code*, not the machine or the run: a bound that
//! holds locally holds in CI until the simulator itself changes.

use probes::Histogram;
use simstats::Table;

use crate::engine::{measure_sampled, Machine, SampledRun, SamplingConfig};
use crate::experiment::{ecperf_machine, jbb_machine, ExperimentPlan};
use crate::Effort;
use workloads::model::Workload;

/// Relative error (vs the full run) each validated metric must stay
/// within, per configuration.
pub const ERROR_BOUND: f64 = 0.05;

/// The validated metrics, in row order.
pub const METRICS: [&str; 5] = [
    "cpi",
    "l1_miss_rate",
    "l2_miss_rate",
    "resp_p50",
    "resp_p95",
];

/// The configuration matrix: `(label, is_jbb, pset, window_mult)`.
/// Small psets keep the CI run short; the 8-way point exercises the
/// coherence traffic the signature's sharing dimension exists for.
///
/// `window_mult` stretches the compared window: at the 2-way points a
/// quick-effort window holds roughly *one* GC burst, so whether that
/// burst lands inside the window is decided by sub-percent clock
/// differences between the two modes and a single boundary flip moves
/// the L2 miss rate by ~10% in either direction. Comparing over
/// several windows dilutes the one-event edge sensitivity to noise the
/// bound tolerates; it is a property of the comparison, not of the
/// estimator.
const CONFIGS: [(&str, bool, usize, u64); 3] = [
    ("jbb:p2", true, 2, 4),
    ("jbb:p8", true, 8, 1),
    ("ecperf:p2", false, 2, 4),
];

/// One metric of one configuration, both ways.
#[derive(Debug, Clone)]
pub struct ValidationRow {
    /// Configuration label (`jbb:p8`, ...).
    pub config: String,
    /// Metric name (one of [`METRICS`], or `wall_speedup`).
    pub metric: &'static str,
    /// The every-cycle run's value.
    pub full: f64,
    /// The sampled run's point estimate.
    pub sampled: f64,
    /// Half-width of the sampled estimate's 95% confidence interval
    /// (0 for the histogram quantiles, which extrapolate bucket mass
    /// rather than averaging per-unit values).
    pub ci_half: f64,
    /// `|sampled - full| / full` — except on `wall_speedup` rows,
    /// where it holds `full_secs / sampled_secs` instead.
    pub rel_err: f64,
}

/// The full differential comparison.
#[derive(Debug, Clone)]
pub struct Validation {
    /// All rows, config-major in [`CONFIGS`] × [`METRICS`] order, each
    /// config closed by its `wall_speedup` row.
    pub rows: Vec<ValidationRow>,
    /// The bound [`violations`](Self::violations) checks against.
    pub bound: f64,
}

/// Per-config result of one execution mode.
struct Side {
    values: [f64; METRICS.len()],
    ci: [f64; METRICS.len()],
    wall_secs: f64,
}

/// Window-only metric values from an every-cycle run over
/// `mult` effort windows.
fn full_side<W: Workload>(m: &mut Machine<W>, effort: Effort, mult: u64) -> Side {
    let t = std::time::Instant::now();
    m.run_until(effort.warmup());
    m.begin_measurement();
    let before = m.counters();
    let start = m.time();
    m.run_until(start + effort.window() * mult);
    let report = m.window_report();
    let delta = m.counters().delta(&before);
    let (p50, p95) = hist_quantiles(m.workload().response_hist());
    let sum = |suffix: &str| -> u64 {
        ["load", "store", "ifetch"]
            .iter()
            .map(|k| delta.get(&format!("mem.{k}.{suffix}")).unwrap_or(0))
            .sum()
    };
    let acc = sum("accesses").max(1);
    Side {
        values: [
            report.cpi.cpi(),
            sum("l1_misses") as f64 / acc as f64,
            sum("l2_misses") as f64 / acc as f64,
            p50,
            p95,
        ],
        ci: [0.0; METRICS.len()],
        wall_secs: t.elapsed().as_secs_f64(),
    }
}

/// Metric estimates (with CIs) from a sampled run over the same
/// `mult`-stretched window.
fn sampled_side<W: Workload>(m: &mut Machine<W>, effort: Effort, mult: u64) -> Side {
    let t = std::time::Instant::now();
    let window = effort.window() * mult;
    let s: SampledRun = measure_sampled(
        m,
        effort.warmup(),
        window,
        &SamplingConfig::for_window(window),
    );
    let kinds_sum = |u: &crate::engine::UnitMeasurement, sfx: &str| -> f64 {
        ["load", "store", "ifetch"]
            .iter()
            .map(|k| u.counter(&format!("mem.{k}.{sfx}")))
            .sum::<u64>() as f64
    };
    // Ratio-of-rates, matching the full side's Σmisses/Σaccesses.
    let ratio =
        |suffix: &str| s.ratio_estimate(|u| kinds_sum(u, suffix), |u| kinds_sum(u, "accesses"));
    let cpi = s.cpi();
    let l1 = ratio("l1_misses");
    let l2 = ratio("l2_misses");
    let (p50, p95) = hist_quantiles(s.response_hist().as_ref());
    Side {
        values: [cpi.mean, l1.mean, l2.mean, p50, p95],
        ci: [cpi.ci_half, l1.ci_half, l2.ci_half, 0.0, 0.0],
        wall_secs: t.elapsed().as_secs_f64(),
    }
}

fn hist_quantiles(h: Option<&Histogram>) -> (f64, f64) {
    h.map(|h| (h.quantile(0.5) as f64, h.quantile(0.95) as f64))
        .unwrap_or((0.0, 0.0))
}

/// Runs the matrix with a fresh core-per-worker plan.
pub fn run(effort: Effort) -> Validation {
    run_with(&ExperimentPlan::new(effort))
}

/// Runs every `(config, mode)` pair as an independent job on `plan`
/// (the plan's own mode is irrelevant here — the comparison runs both)
/// and joins the sides into rows.
pub fn run_with(plan: &ExperimentPlan) -> Validation {
    let effort = plan.effort();
    let jobs: Vec<(usize, bool)> = (0..CONFIGS.len())
        .flat_map(|c| [(c, false), (c, true)])
        .collect();
    let labels = jobs
        .iter()
        .map(|&(c, sampled)| {
            let mode = if sampled { "sampled" } else { "full" };
            format!("validate:{}:{mode}", CONFIGS[c].0)
        })
        .collect();
    let sides = plan
        .clone()
        .with_job_labels(labels)
        .run(&jobs, |&(c, sampled)| {
            let (_, is_jbb, p, mult) = CONFIGS[c];
            match (is_jbb, sampled) {
                (true, false) => full_side(&mut jbb_machine(p, 2 * p, 1, effort), effort, mult),
                (true, true) => sampled_side(&mut jbb_machine(p, 2 * p, 1, effort), effort, mult),
                (false, false) => full_side(&mut ecperf_machine(p, 1, effort), effort, mult),
                (false, true) => sampled_side(&mut ecperf_machine(p, 1, effort), effort, mult),
            }
        });
    let mut rows = Vec::new();
    for (c, pair) in sides.chunks(2).enumerate() {
        let (full, samp) = (&pair[0], &pair[1]);
        let config = CONFIGS[c].0.to_string();
        for (i, &metric) in METRICS.iter().enumerate() {
            let f = full.values[i];
            rows.push(ValidationRow {
                config: config.clone(),
                metric,
                full: f,
                sampled: samp.values[i],
                ci_half: samp.ci[i],
                rel_err: (samp.values[i] - f).abs() / f.abs().max(f64::MIN_POSITIVE),
            });
        }
        rows.push(ValidationRow {
            config,
            metric: "wall_speedup",
            full: full.wall_secs,
            sampled: samp.wall_secs,
            ci_half: 0.0,
            rel_err: full.wall_secs / samp.wall_secs.max(f64::MIN_POSITIVE),
        });
    }
    Validation {
        rows,
        bound: ERROR_BOUND,
    }
}

impl Validation {
    /// The metric rows (excluding the `wall_speedup` bookkeeping rows).
    pub fn metric_rows(&self) -> impl Iterator<Item = &ValidationRow> {
        self.rows.iter().filter(|r| r.metric != "wall_speedup")
    }

    /// Metrics outside the error bound — the CI failure condition.
    pub fn violations(&self) -> Vec<String> {
        self.metric_rows()
            .filter(|r| r.rel_err > self.bound)
            .map(|r| {
                format!(
                    "{} {}: sampled {:.4} vs full {:.4} ({:.1}% > {:.0}% bound)",
                    r.config,
                    r.metric,
                    r.sampled,
                    r.full,
                    r.rel_err * 100.0,
                    self.bound * 100.0
                )
            })
            .collect()
    }

    /// Renders the comparison.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "Sampled-vs-Full Validation (bound {:.0}%)",
                self.bound * 100.0
            ),
            &["config", "metric", "full", "sampled", "ci±", "rel err"],
        );
        for r in &self.rows {
            if r.metric == "wall_speedup" {
                t.row(&[
                    r.config.clone(),
                    r.metric.into(),
                    format!("{:.2}s", r.full),
                    format!("{:.2}s", r.sampled),
                    String::new(),
                    format!("{:.1}x", r.rel_err),
                ]);
            } else {
                t.row(&[
                    r.config.clone(),
                    r.metric.into(),
                    format!("{:.4}", r.full),
                    format!("{:.4}", r.sampled),
                    format!("{:.4}", r.ci_half),
                    format!("{:.2}%", r.rel_err * 100.0),
                ]);
            }
        }
        t
    }

    /// The comparison as CSV (the `SAMPLED_VALIDATION.csv` artifact).
    /// On `wall_speedup` rows the `rel_err` column holds the speedup
    /// factor and full/sampled hold wall seconds.
    pub fn csv(&self) -> String {
        let mut s = String::from("config,metric,full,sampled,ci_half,rel_err\n");
        for r in &self.rows {
            s.push_str(&format!(
                "{},{},{:.6},{:.6},{:.6},{:.6}\n",
                r.config, r.metric, r.full, r.sampled, r.ci_half, r.rel_err
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_matrix_stays_within_bound() {
        let v = run(Effort::Quick);
        assert_eq!(
            v.rows.len(),
            CONFIGS.len() * (METRICS.len() + 1),
            "one row per config x metric plus wall"
        );
        assert_eq!(v.violations(), Vec::<String>::new());
        assert!(v.csv().lines().count() == v.rows.len() + 1);
        // Every config saw responses: the quantile metrics are live.
        for r in v.metric_rows().filter(|r| r.metric.starts_with("resp_")) {
            assert!(
                r.full > 0.0,
                "{} {} has no full responses",
                r.config,
                r.metric
            );
        }
    }
}
