//! Shared runner for the scaling figures (4–9): both workloads swept over
//! the processor axis, all window reports retained so each figure can
//! derive its own series without re-simulating.

use crate::engine::WindowReport;
use crate::experiment::{ecperf_machine, jbb_machine, measure_in, ExperimentPlan, JobTelemetry};
use crate::Effort;

/// One processor count's worth of measurements (one report per seed).
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Processors in the set.
    pub p: usize,
    /// One window report per seed.
    pub reports: Vec<WindowReport>,
}

impl ScalingPoint {
    /// Mean of `f` across seeds.
    pub fn mean(&self, f: impl Fn(&WindowReport) -> f64) -> f64 {
        let s: f64 = self.reports.iter().map(&f).sum();
        s / self.reports.len() as f64
    }

    /// Sample standard deviation of `f` across seeds.
    pub fn stddev(&self, f: impl Fn(&WindowReport) -> f64) -> f64 {
        if self.reports.len() < 2 {
            return 0.0;
        }
        let mean = self.mean(&f);
        let var: f64 = self
            .reports
            .iter()
            .map(|r| (f(r) - mean).powi(2))
            .sum::<f64>()
            / (self.reports.len() - 1) as f64;
        var.sqrt()
    }
}

/// Both workloads' sweeps.
#[derive(Debug, Clone)]
pub struct ScalingData {
    /// Effort the sweep ran at.
    pub effort: Effort,
    /// SPECjbb points, ascending processor count.
    pub jbb: Vec<ScalingPoint>,
    /// ECperf points, ascending processor count.
    pub ecperf: Vec<ScalingPoint>,
}

impl ScalingData {
    /// Speedup series for a workload: mean throughput normalized to the
    /// first point's.
    pub fn speedups(points: &[ScalingPoint]) -> Vec<(usize, f64)> {
        let base = points
            .first()
            .map(|p| p.mean(|r| r.throughput()))
            .unwrap_or(1.0)
            .max(f64::MIN_POSITIVE);
        points
            .iter()
            .map(|p| (p.p, p.mean(|r| r.throughput()) / base))
            .collect()
    }
}

/// Runs both workloads over `ps`, `effort.seeds()` times each, with a
/// core-per-worker [`ExperimentPlan`].
pub fn run_scaling(effort: Effort, ps: &[usize]) -> ScalingData {
    run_scaling_with(&ExperimentPlan::new(effort), ps)
}

/// Runs both workloads over `ps`, [`ExperimentPlan::seeds`] times each.
/// SPECjbb runs with 2P warehouses ("optimal warehouses at each system
/// size", Section 2.1); ECperf's thread pool is tuned per processor count
/// (Section 3.2).
///
/// Every `(workload, p, seed)` run is an independent job on the plan's
/// worker pool; reports are regrouped in axis/seed order, so the result
/// is bit-identical to a serial sweep. The sweep mixes system sizes, so
/// jobs carry [`Effort::cost_hint`]s and the pool claims the 16-way
/// points before the uniprocessor ones. Each job honors the plan's
/// [`SimMode`](crate::SimMode): a sampled sweep runs one seed per point
/// and its jobs stream their unit schedules into the run log.
pub fn run_scaling_with(plan: &ExperimentPlan, ps: &[usize]) -> ScalingData {
    let effort = plan.effort();
    let seeds = plan.seeds();
    let mode = plan.mode().clone();
    let jobs: Vec<(bool, usize, u64)> = [true, false]
        .iter()
        .flat_map(|&is_jbb| {
            ps.iter()
                .flat_map(move |&p| (0..seeds).map(move |seed| (is_jbb, p, seed)))
        })
        .collect();
    let labels = jobs
        .iter()
        .map(|(is_jbb, p, seed)| {
            let wl = if *is_jbb { "jbb" } else { "ecperf" };
            format!("scaling:{wl}:p{p}:s{seed}")
        })
        .collect();
    let mut reports = plan
        .clone()
        .with_job_labels(labels)
        .run_telemetry(
            &jobs,
            |&(_, p, _)| effort.cost_hint(p),
            |&(is_jbb, p, seed)| {
                let (report, sampled) = if is_jbb {
                    let mut m = jbb_machine(p, 2 * p, seed, effort);
                    measure_in(&mut m, effort, &mode)
                } else {
                    let mut m = ecperf_machine(p, seed, effort);
                    measure_in(&mut m, effort, &mode)
                };
                let tele = JobTelemetry::default().with_samples(sampled.as_ref());
                (report, tele)
            },
        )
        .into_iter();
    let mut collect_points = |_is_jbb: bool| -> Vec<ScalingPoint> {
        ps.iter()
            .map(|&p| ScalingPoint {
                p,
                reports: (0..seeds)
                    .map(|_| reports.next().expect("one report per job"))
                    .collect(),
            })
            .collect()
    };
    ScalingData {
        effort,
        jbb: collect_points(true),
        ecperf: collect_points(false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_point_statistics() {
        let mk = |tx: u64| WindowReport {
            transactions: tx,
            cycles: simcpu::CLOCK_HZ, // 1 second
            cpi: simcpu::CpiReport::default(),
            modes: Default::default(),
            gc_cycles: 0,
            gc_count: 0,
            c2c_ratio: 0.0,
            snoop_filter_rate: 0.0,
        };
        let p = ScalingPoint {
            p: 4,
            reports: vec![mk(100), mk(200)],
        };
        assert!((p.mean(|r| r.throughput()) - 150.0).abs() < 1e-9);
        assert!(p.stddev(|r| r.throughput()) > 0.0);
    }

    #[test]
    fn speedups_normalize_to_first_point() {
        let mk = |p: usize, tx: u64| ScalingPoint {
            p,
            reports: vec![WindowReport {
                transactions: tx,
                cycles: simcpu::CLOCK_HZ,
                cpi: simcpu::CpiReport::default(),
                modes: Default::default(),
                gc_cycles: 0,
                gc_count: 0,
                c2c_ratio: 0.0,
                snoop_filter_rate: 0.0,
            }],
        };
        let pts = vec![mk(1, 100), mk(4, 350)];
        let s = ScalingData::speedups(&pts);
        assert!((s[0].1 - 1.0).abs() < 1e-9);
        assert!((s[1].1 - 3.5).abs() < 1e-9);
    }
}
