//! Trace capture as an observer; trace replay as a plan job.
//!
//! This is the engine half of the paper's Simics → Sumo pipeline: a
//! [`TraceObserver`] attached via `Machine::attach_observer` records the
//! machine's whole reference stream — per-CPU, tagged with each
//! reference's [`AccessSource`], window boundaries in-stream — and
//! [`replay_trace`] plays a capture back through a fresh
//! [`MemorySystem`], reproducing the live run's measurement-window
//! statistics exactly. Batches of captures go through the
//! [`ExperimentPlan`](crate::ExperimentPlan) like any other job
//! ([`replay_traces`]), so trace-driven and execution-driven experiments
//! share one spine.
//!
//! The paper's Section 3.3 filter (multiprocessor ECperf traces reduced
//! to the application-server processors) is an observer predicate: build
//! the observer with [`TraceObserver::filtered`] — or capture everything
//! and filter at replay time with
//! [`SystemTrace::filtered`](memsys::SystemTrace::filtered).

use memsys::{BusStats, HierarchyConfig, MemorySystem, SystemStats, SystemTrace};

use super::observer::{AccessEvent, AccessSource, SimObserver};
use crate::experiment::ExperimentPlan;

/// Records everything the machine's memory system consumes, in coherence
/// order, as a [`SystemTrace`].
///
/// Unlike the statistics observers, a window reset does not discard the
/// warm-up prefix: the boundary is recorded *in-stream* so a replay can
/// re-warm a cold system identically and reset its counters at the same
/// point.
#[derive(Default)]
pub struct TraceObserver {
    trace: SystemTrace,
    keep: Option<Box<dyn Fn(usize, AccessSource) -> bool + Send>>,
}

impl TraceObserver {
    /// Captures every reference from every processor and source.
    pub fn new() -> Self {
        TraceObserver::default()
    }

    /// Captures only steps `keep(cpu, source)` accepts — the paper's
    /// filter-to-one-tier step applied at capture time.
    pub fn filtered(keep: impl Fn(usize, AccessSource) -> bool + Send + 'static) -> Self {
        TraceObserver {
            trace: SystemTrace::new(),
            keep: Some(Box::new(keep)),
        }
    }

    /// The capture so far.
    pub fn trace(&self) -> &SystemTrace {
        &self.trace
    }

    /// Consumes the observer, returning the capture.
    pub fn into_trace(self) -> SystemTrace {
        self.trace
    }

    fn keeps(&self, cpu: usize, source: AccessSource) -> bool {
        self.keep.as_ref().map_or(true, |k| k(cpu, source))
    }
}

impl SimObserver for TraceObserver {
    fn on_access(&mut self, event: &AccessEvent<'_>) {
        if self.keeps(event.cpu, event.source) {
            self.trace
                .record_ref(event.cpu, event.source, event.kind, event.addr);
        }
    }

    fn on_instructions(&mut self, cpu: usize, n: u64, source: AccessSource) {
        if self.keeps(cpu, source) {
            self.trace.record_instructions(cpu, n);
        }
    }

    fn on_window_reset(&mut self, _now: u64) {
        self.trace.record_window_reset();
    }
}

/// What a replay measured: the memory-system statistics over the
/// capture's measurement window, plus the instruction denominator for
/// per-1000-instruction rates.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    /// Memory-system statistics after the replay (reset at the capture's
    /// recorded window boundary, so they cover the same window).
    pub stats: SystemStats,
    /// Bus transaction counters over the same window, including the
    /// snoop-filter diagnostics (`snoops_sent` / `snoops_filtered`).
    pub bus: BusStats,
    /// Instructions retired inside the window.
    pub instructions: u64,
}

impl ReplayReport {
    /// Data misses per 1000 instructions over the replayed window.
    pub fn data_miss_per_kilo(&self) -> f64 {
        self.stats.data().l2_misses as f64 * 1000.0 / self.instructions.max(1) as f64
    }
}

/// Replays a capture into a fresh memory system of the given
/// configuration and reports what it measured.
///
/// # Panics
///
/// Panics if the trace references a processor `hierarchy` lacks.
pub fn replay_trace(trace: &SystemTrace, hierarchy: &HierarchyConfig) -> ReplayReport {
    let mut sys = MemorySystem::new(hierarchy.clone());
    trace.replay_into(&mut sys);
    ReplayReport {
        stats: sys.stats().clone(),
        bus: *sys.bus_stats(),
        instructions: trace.window_instructions(),
    }
}

/// Replays a batch of captures across the plan's worker pool — trace
/// jobs are plan jobs like any other; reports merge in input order.
/// Cost hints are the traces' event counts, so mixed batches schedule
/// largest-first.
pub fn replay_traces(
    plan: &ExperimentPlan,
    traces: &[SystemTrace],
    hierarchy: &HierarchyConfig,
) -> Vec<ReplayReport> {
    plan.run_hinted(traces, |t| t.len() as u64, |t| replay_trace(t, hierarchy))
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsys::{AccessKind, AccessOutcome, Addr, HitLevel};

    fn event(cpu: usize, source: AccessSource, outcome: &AccessOutcome) -> AccessEvent<'_> {
        AccessEvent {
            cpu,
            kind: AccessKind::Load,
            addr: Addr(0x40),
            outcome,
            now: 0,
            source,
            charge: simcpu::StallCharge::default(),
        }
    }

    #[test]
    fn observer_records_and_tags() {
        let hit = AccessOutcome {
            level: HitLevel::L1,
            c2c: false,
            writeback: false,
            mem_cycles: None,
        };
        let mut obs = TraceObserver::new();
        obs.on_instructions(0, 12, AccessSource::Workload);
        obs.on_access(&event(0, AccessSource::Workload, &hit));
        obs.on_window_reset(0);
        obs.on_access(&event(1, AccessSource::KernelTick, &hit));
        let t = obs.into_trace();
        assert_eq!(t.refs(), 2);
        assert_eq!(t.instructions(), 12);
        assert_eq!(t.window_instructions(), 0);
        assert_eq!(t.filtered(|_, s| s == AccessSource::KernelTick).refs(), 1);
    }

    #[test]
    fn filtered_observer_drops_at_capture() {
        let hit = AccessOutcome {
            level: HitLevel::L1,
            c2c: false,
            writeback: false,
            mem_cycles: None,
        };
        let mut obs =
            TraceObserver::filtered(|cpu, source| cpu < 2 && source != AccessSource::KernelTick);
        obs.on_access(&event(0, AccessSource::Workload, &hit));
        obs.on_access(&event(1, AccessSource::KernelTick, &hit));
        obs.on_access(&event(5, AccessSource::Workload, &hit));
        obs.on_instructions(5, 100, AccessSource::Workload);
        let t = obs.into_trace();
        assert_eq!(t.refs(), 1);
        assert_eq!(t.instructions(), 0);
    }

    #[test]
    fn replayed_batch_merges_in_input_order() {
        let hierarchy = HierarchyConfig::e6000(2).unwrap();
        let mut a = SystemTrace::new();
        a.record_ref(0, AccessSource::Workload, AccessKind::Store, Addr(0x80));
        let mut b = SystemTrace::new();
        b.record_ref(0, AccessSource::Workload, AccessKind::Load, Addr(0x80));
        b.record_ref(1, AccessSource::Workload, AccessKind::Load, Addr(0x80));
        let plan = ExperimentPlan::serial(crate::Effort::Quick).with_threads(2);
        let reports = replay_traces(&plan, &[a, b], &hierarchy);
        assert_eq!(reports[0].stats.store.accesses, 1);
        assert_eq!(reports[1].stats.load.accesses, 2);
    }
}
