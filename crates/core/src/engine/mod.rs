//! The layered simulation engine.
//!
//! The machine is split into four units behind narrow interfaces:
//!
//! - [`kernel`] — the discrete-event loop: [`Machine`] owns the memory
//!   system, CPU timers and workload, advances virtual time, and wires
//!   each step's references through the sink;
//! - [`dispatch`] — the scheduler: ready queue, affinity, quantum
//!   preemption, locks, sleeps;
//! - [`gc_driver`] — stop-the-world collection choreography and GC
//!   bookkeeping;
//! - [`accounting`] — per-processor clocks, execution-mode accounting and
//!   window-scoped counters;
//! - [`observer`] — the [`SimObserver`] seam through which interval
//!   samplers, cache sweeps and per-line statistics watch a run;
//! - [`attrib`] — the cycle-attribution profiler on that seam:
//!   phase × component × cause × heap-region CPI stacks, exported as
//!   RunLog `attrib` records and folded flamegraph stacks;
//! - [`trace`] — reference-trace capture as an observer on that same
//!   seam, and replay of captures as ordinary experiment-plan jobs;
//! - [`sampling`] — the sampled-simulation spine: signature-picked
//!   sample units, functional fast-forward with cache warming, and
//!   CI-bounded extrapolation of per-unit measurements.
//!
//! The kernel is the only unit that touches the memory system; the
//! scheduler and GC driver manipulate time exclusively through
//! [`accounting::Accounting`], which is what keeps mode fractions summing
//! to one (Figure 5) regardless of how control moves between layers.

pub mod accounting;
pub mod attrib;
pub mod dispatch;
pub mod gc_driver;
pub mod kernel;
pub mod observer;
pub mod probe;
pub mod sampling;
pub mod trace;

pub use accounting::{Accounting, WindowReport};
pub use attrib::AttribProfiler;
pub use dispatch::{SchedParams, Scheduler};
pub use gc_driver::GcDriver;
pub use kernel::{Machine, MachineConfig};
pub use observer::{
    AccessEvent, AccessSource, IntervalSample, IntervalSampler, LineStatsObserver, ObserverHandle,
    ObserverSet, SimObserver, SweepObserver, TimelineCollector,
};
pub use sampling::{
    measure_sampled, SampledRun, SamplingConfig, SimMode, UnitMeasurement, UnitRecord,
};
pub use trace::{replay_trace, replay_traces, ReplayReport, TraceObserver};
