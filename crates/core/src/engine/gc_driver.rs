//! Stop-the-world GC orchestration and bookkeeping.
//!
//! The paper's JVMs collect with a single-threaded, stop-the-world
//! collector: every benchmark processor reaches a safepoint, one
//! processor runs the collector while the rest sit in GC-idle, and the
//! world resumes together. This module owns that choreography — clock
//! synchronization, idle-filling, interval recording — while the kernel
//! supplies the collector itself as a closure (it needs the machine's
//! memory system and timer, which the driver deliberately knows nothing
//! about).

use sysos::modes::ExecMode;
use sysos::sched::ProcessorSet;

use super::accounting::Accounting;

/// Collection counts, cycles, and intervals — machine-lifetime and
/// window-scoped.
#[derive(Debug, Clone, Default)]
pub struct GcDriver {
    gc_count: u64,
    gc_cycles: u64,
    intervals: Vec<(u64, u64)>,
    window_gc_cycles: u64,
    window_gc_count: u64,
}

impl GcDriver {
    /// A driver with no collections recorded.
    pub fn new() -> Self {
        GcDriver::default()
    }

    /// Collections since construction.
    pub fn gc_count(&self) -> u64 {
        self.gc_count
    }

    /// Collector cycles since construction.
    pub fn gc_cycles(&self) -> u64 {
        self.gc_cycles
    }

    /// GC intervals `(start, end)` in cycles since the last window reset
    /// (for Figure 10's shading).
    pub fn intervals(&self) -> &[(u64, u64)] {
        &self.intervals
    }

    /// Collections in the current window.
    pub fn window_gc_count(&self) -> u64 {
        self.window_gc_count
    }

    /// Collector cycles in the current window.
    pub fn window_gc_cycles(&self) -> u64 {
        self.window_gc_cycles
    }

    /// Discards window-scoped state at a window boundary.
    pub fn begin_window(&mut self) {
        self.window_gc_cycles = 0;
        self.window_gc_count = 0;
        self.intervals.clear();
    }

    /// Runs one stop-the-world collection on `cpu`, returning its
    /// `(start, end)` interval.
    ///
    /// Synchronizes every processor in `pset` to the safepoint (the
    /// latest clock among them), runs `collector` — a closure that
    /// performs the actual collection starting at the safepoint time and
    /// returns its duration in cycles — charges that duration to `cpu`
    /// as User time (the collector is JVM code, not kernel code), and
    /// GC-idle-fills the other processors to the end of the collection.
    pub fn collect(
        &mut self,
        acct: &mut Accounting,
        pset: &ProcessorSet,
        cpu: usize,
        collector: impl FnOnce(u64) -> u64,
    ) -> (u64, u64) {
        let start = pset
            .cpus()
            .iter()
            .map(|&c| acct.clock(c))
            .max()
            .unwrap_or_else(|| acct.clock(cpu));
        for &c in pset.cpus() {
            acct.fill(c, start, ExecMode::GcIdle);
        }
        let duration = collector(start);
        acct.advance(cpu, ExecMode::User, duration);
        let end = start + duration;
        // Everyone else idles while the single-threaded collector runs.
        for &c in pset.cpus() {
            if c != cpu {
                acct.fill(c, end, ExecMode::GcIdle);
            }
        }
        self.gc_count += 1;
        self.gc_cycles += duration;
        self.window_gc_cycles += duration;
        self.window_gc_count += 1;
        self.intervals.push((start, end));
        (start, end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_synchronizes_charges_and_records() {
        let mut acct = Accounting::new(4);
        let mut gc = GcDriver::new();
        let pset = ProcessorSet::first_n(3, 4);
        acct.advance(0, ExecMode::User, 100);
        acct.advance(1, ExecMode::User, 300); // the laggard sets the safepoint
        acct.advance(2, ExecMode::User, 200);

        let (start, end) = gc.collect(&mut acct, &pset, 0, |at| {
            assert_eq!(at, 300, "collector starts at the safepoint");
            500
        });
        assert_eq!((start, end), (300, 800));
        assert_eq!(acct.clock(0), 800, "collector cpu ran to the end");
        assert_eq!(acct.clock(1), 800, "others gc-idle to the end");
        assert_eq!(acct.clock(2), 800);
        assert_eq!(acct.clock(3), 0, "outside the set: untouched");
        assert_eq!(gc.gc_count(), 1);
        assert_eq!(gc.gc_cycles(), 500);
        assert_eq!(gc.intervals(), &[(300, 800)]);
    }

    #[test]
    fn window_reset_keeps_lifetime_counters() {
        let mut acct = Accounting::new(1);
        let mut gc = GcDriver::new();
        let pset = ProcessorSet::first_n(1, 1);
        gc.collect(&mut acct, &pset, 0, |_| 100);
        gc.begin_window();
        assert_eq!(gc.gc_count(), 1);
        assert_eq!(gc.window_gc_count(), 0);
        assert!(gc.intervals().is_empty());
    }
}
