//! Counter-registry descriptors for the engine layer, and the
//! machine-wide snapshot.
//!
//! [`Accounting`] registers under `acct.*` (transactions plus the
//! `mpstat` mode cycle totals); [`Machine::counters`] assembles the
//! full instrument panel — memory system, merged pipeline report, a
//! `cpustat`-style [`CounterSample`], and the accounting — into one
//! flat snapshot. Everything here reads existing fields; the event loop
//! is untouched.

use probes::registry::{CounterDesc, CounterKind, CounterSet, Snapshot};
use simcpu::{CounterSample, CpiReport};
use sysos::modes::ExecMode;

use crate::engine::accounting::Accounting;
use crate::engine::kernel::Machine;
use workloads::model::Workload;

const fn count(name: &'static str) -> CounterDesc {
    CounterDesc::new(name, CounterKind::Count)
}

const fn cycles(name: &'static str) -> CounterDesc {
    CounterDesc::new(name, CounterKind::Cycles)
}

static ACCOUNTING_DESCS: [CounterDesc; 8] = [
    count("acct.transactions"),
    count("acct.window_tx"),
    cycles("acct.clock_sum"),
    // Mode totals in ALL_MODES order — the mpstat columns.
    cycles("acct.mode.user"),
    cycles("acct.mode.system"),
    cycles("acct.mode.io"),
    cycles("acct.mode.idle"),
    cycles("acct.mode.gc_idle"),
];

impl CounterSet for Accounting {
    fn descriptors(&self) -> &'static [CounterDesc] {
        &ACCOUNTING_DESCS
    }

    fn values(&self, out: &mut Vec<u64>) {
        out.extend([
            self.transactions(),
            self.window_transactions(),
            self.clocks().iter().sum(),
            self.mode_total(ExecMode::User),
            self.mode_total(ExecMode::System),
            self.mode_total(ExecMode::Io),
            self.mode_total(ExecMode::Idle),
            self.mode_total(ExecMode::GcIdle),
        ]);
    }
}

/// Every descriptor table the full machine samples through — memory
/// system, processor model, and the engine's own accounting — for
/// assembling the `simdiff` drift policy. Drift classes (Exact vs
/// Tolerance bands) ride on the descriptors, so the gate and the
/// sampler can never disagree about a counter's contract.
pub fn descriptor_tables() -> Vec<&'static [CounterDesc]> {
    let mut tables = memsys::probe::descriptor_tables();
    tables.extend(simcpu::probe::descriptor_tables());
    tables.push(&ACCOUNTING_DESCS);
    tables.push(crate::engine::attrib::descriptor_table());
    tables
}

impl<W: Workload> Machine<W> {
    /// A `cpustat`-style sample of the paper's four UltraSPARC II
    /// events, derived from the pipeline and bus counters.
    pub fn counter_sample(&self) -> CounterSample {
        let cpi = self.pset_cpi();
        CounterSample {
            cycle_cnt: cpi.cycles(),
            instr_cnt: cpi.instructions,
            ec_snoop_cb: self.memory().bus_stats().snoop_copybacks,
            ec_misses: self.memory().stats().total_l2_misses(),
        }
    }

    /// Every counter the machine maintains, as one flat snapshot:
    /// `mem.*`/`bus.*`(/`lines.*`), `cpu.*`, `cpustat.*`, `acct.*`.
    pub fn counters(&self) -> Snapshot {
        let mut snap = Snapshot::new();
        self.memory().record_counters(&mut snap);
        snap.record(&self.pset_cpi());
        snap.record(&self.counter_sample());
        snap.record(self.accounting());
        snap
    }

    /// The merged [`CpiReport`] over the benchmark's processor set.
    pub(crate) fn pset_cpi(&self) -> CpiReport {
        let mut cpi = CpiReport::default();
        for &c in self.pset_cpus() {
            cpi = cpi.merge(&self.timer_report(c));
        }
        cpi
    }
}

#[cfg(test)]
mod tests {
    use crate::experiment::{jbb_machine, measure, Effort};

    #[test]
    fn machine_snapshot_is_unique_and_consistent() {
        let effort = Effort::Quick;
        let mut m = jbb_machine(4, 2, 1, effort);
        let _ = measure(&mut m, effort);

        let snap = m.counters();
        assert!(snap.names_unique());
        // Cross-crate consistency: the cpustat veneer, the bus stats and
        // the memory stats all describe the same run.
        assert_eq!(snap.get("cpustat.ec_snoop_cb"), snap.get("bus.snoop_cb"));
        assert_eq!(
            snap.get("cpustat.ec_misses"),
            snap.get("mem.l2_miss.percpu_total")
        );
        assert_eq!(snap.get("acct.transactions"), Some(m.transactions()));
        assert!(snap.get("mem.load.accesses").unwrap() > 0);
    }
}
