//! Mode and timeline accounting: per-processor virtual clocks,
//! `mpstat`-style execution-mode bookkeeping, and per-window transaction
//! counts.
//!
//! Every cycle a processor spends is charged to exactly one
//! [`ExecMode`]; the clocks only move forward through this module, so
//! the mode fractions always cover the full window (the invariant behind
//! Figure 5's stacked bars summing to 1).

use simcpu::CpiReport;
use sysos::modes::{ExecMode, ModeAccount, ModeBreakdown};
use sysos::sched::ProcessorSet;

/// Clocks, modes, and window-scoped transaction accounting for one
/// machine.
#[derive(Debug, Clone)]
pub struct Accounting {
    clocks: Vec<u64>,
    modes: ModeAccount,
    tx_count: u64,
    window_start: u64,
    window_tx: u64,
}

impl Accounting {
    /// Zeroed accounting for `cpus` processors.
    pub fn new(cpus: usize) -> Self {
        Accounting {
            clocks: vec![0; cpus],
            modes: ModeAccount::new(cpus),
            tx_count: 0,
            window_start: 0,
            window_tx: 0,
        }
    }

    /// Number of processors tracked.
    pub fn cpus(&self) -> usize {
        self.clocks.len()
    }

    /// Processor `cpu`'s virtual clock in cycles.
    #[inline]
    pub fn clock(&self, cpu: usize) -> u64 {
        self.clocks[cpu]
    }

    /// All clocks (for min/max scans).
    #[inline]
    pub fn clocks(&self) -> &[u64] {
        &self.clocks
    }

    /// Charges `cycles` of `mode` to `cpu`, advancing its clock.
    #[inline]
    pub fn advance(&mut self, cpu: usize, mode: ExecMode, cycles: u64) {
        self.modes.add(cpu, mode, cycles);
        self.clocks[cpu] += cycles;
    }

    /// Advances `cpu` to absolute time `to`, charging the gap to `mode`
    /// (no-op if the clock is already past `to`).
    pub fn fill(&mut self, cpu: usize, to: u64, mode: ExecMode) {
        if self.clocks[cpu] < to {
            self.modes.add(cpu, mode, to - self.clocks[cpu]);
            self.clocks[cpu] = to;
        }
    }

    /// Records a completed transaction.
    #[inline]
    pub fn tx_done(&mut self) {
        self.tx_count += 1;
        self.window_tx += 1;
    }

    /// Transactions completed since construction.
    pub fn transactions(&self) -> u64 {
        self.tx_count
    }

    /// Transactions completed in the current window.
    pub fn window_transactions(&self) -> u64 {
        self.window_tx
    }

    /// Start time of the current measurement window.
    pub fn window_start(&self) -> u64 {
        self.window_start
    }

    /// Opens a new measurement window at time `now`: resets the mode
    /// account and the window-scoped counters. Clocks keep advancing —
    /// virtual time never rewinds.
    pub fn begin_window(&mut self, now: u64) {
        self.modes.reset();
        self.window_start = now;
        self.window_tx = 0;
    }

    /// Total cycles charged to `mode` across all processors in the
    /// current window (the counter-registry export).
    pub fn mode_total(&self, mode: ExecMode) -> u64 {
        self.modes.total(mode)
    }

    /// Mode breakdown over the processors in `pset` only (the paper
    /// reports the benchmark's processor set, not the whole machine).
    pub fn pset_breakdown(&self, pset: &ProcessorSet) -> ModeBreakdown {
        let mut pset_modes = ModeAccount::new(pset.len());
        for (i, &c) in pset.cpus().iter().enumerate() {
            for m in sysos::modes::ALL_MODES {
                pset_modes.add(i, m, self.modes.get(c, m));
            }
        }
        pset_modes.breakdown()
    }
}

/// A window's worth of results.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowReport {
    /// Transactions completed in the window.
    pub transactions: u64,
    /// Window length in cycles.
    pub cycles: u64,
    /// Merged CPI report over the processor set.
    pub cpi: CpiReport,
    /// Mode breakdown over the processor set.
    pub modes: ModeBreakdown,
    /// GC time in cycles within the window.
    pub gc_cycles: u64,
    /// Number of collections in the window.
    pub gc_count: u64,
    /// Cache-to-cache / L2-miss ratio.
    pub c2c_ratio: f64,
    /// Fraction of would-be remote snoop probes the memory system's
    /// sharer directory eliminated over the window (0 on broadcast or
    /// single-L2 systems). Diagnostics only: the filter is exact, so no
    /// other statistic depends on it.
    pub snoop_filter_rate: f64,
}

impl WindowReport {
    /// Throughput in transactions per simulated second.
    pub fn throughput(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.transactions as f64 * simcpu::CLOCK_HZ as f64 / self.cycles as f64
        }
    }

    /// Throughput with GC time excluded (Figure 9's dotted lines): the
    /// collector is single-threaded, so its busy cycles *are* wall-clock
    /// stop-the-world time, subtracted from the window.
    pub fn throughput_no_gc(&self) -> f64 {
        let busy = self.cycles.saturating_sub(self.gc_cycles);
        if busy == 0 {
            0.0
        } else {
            self.transactions as f64 * simcpu::CLOCK_HZ as f64 / busy as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_and_fill_move_clocks_forward_only() {
        let mut a = Accounting::new(2);
        a.advance(0, ExecMode::User, 100);
        assert_eq!(a.clock(0), 100);
        a.fill(0, 50, ExecMode::Idle); // behind: no-op
        assert_eq!(a.clock(0), 100);
        a.fill(0, 250, ExecMode::Idle);
        assert_eq!(a.clock(0), 250);
        assert_eq!(a.clock(1), 0);
    }

    #[test]
    fn window_reset_keeps_clocks_and_total_tx() {
        let mut a = Accounting::new(1);
        a.advance(0, ExecMode::User, 10);
        a.tx_done();
        a.begin_window(10);
        assert_eq!(a.window_transactions(), 0);
        assert_eq!(a.transactions(), 1);
        assert_eq!(a.clock(0), 10);
        assert_eq!(a.window_start(), 10);
    }

    #[test]
    fn pset_breakdown_covers_only_the_set() {
        let mut a = Accounting::new(4);
        a.advance(0, ExecMode::User, 100);
        a.advance(3, ExecMode::System, 900); // outside the set
        let pset = ProcessorSet::first_n(2, 4);
        let b = a.pset_breakdown(&pset);
        assert!(
            (b.user - 1.0).abs() < 1e-12,
            "only cpu0's time counts: {b:?}"
        );
    }

    #[test]
    fn throughput_excludes_gc_when_asked() {
        let r = WindowReport {
            transactions: 100,
            cycles: simcpu::CLOCK_HZ,
            cpi: CpiReport::default(),
            modes: ModeBreakdown::default(),
            gc_cycles: simcpu::CLOCK_HZ / 2,
            gc_count: 1,
            c2c_ratio: 0.0,
            snoop_filter_rate: 0.0,
        };
        assert!((r.throughput() - 100.0).abs() < 1e-9);
        assert!((r.throughput_no_gc() - 200.0).abs() < 1e-9);
    }
}
