//! The discrete-event kernel: [`Machine`] advances a workload over the
//! simulated processors.
//!
//! This is the harness's equivalent of the paper's instrumented E6000 +
//! Simics setup. The kernel owns the coherent [`MemorySystem`], the
//! per-processor [`CpuTimer`]s and the workload; it delegates *who runs
//! where* to the [`Scheduler`](super::Scheduler), stop-the-world
//! collections to the [`GcDriver`](super::GcDriver), and all
//! clock/mode bookkeeping to [`Accounting`]. Background OS clock ticks
//! on *every* machine processor touch shared kernel lines — the reason
//! the paper sees cache-to-cache transfers even with the benchmark bound
//! to one processor (Figure 8).

use memsys::{AccessKind, Addr, HierarchyConfig, HitLevel, LatencyCosts, MemSink, MemorySystem};
use prng::SimRng;
use probes::Histogram;
use simcpu::{CpiReport, CpuTimer, LatencyTable, PipelineParams};
use sysos::modes::ExecMode;
use sysos::tlb::{Tlb, TlbConfig};
use workloads::model::{Control, StepCtx, StepResult, Workload};

use super::accounting::{Accounting, WindowReport};
use super::dispatch::{SchedParams, Scheduler};
use super::gc_driver::GcDriver;
use super::observer::{AccessEvent, AccessSource, ObserverHandle, ObserverSet, SimObserver};
use super::sampling::{FastSink, SamplingState, SigCounts, SignatureCollector};

/// Machine configuration.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Cache hierarchy (defaults: E6000 with 16 processors).
    pub hierarchy: HierarchyConfig,
    /// Processors the benchmark is bound to (`psrset`).
    pub pset: usize,
    /// Pipeline parameters.
    pub pipeline: PipelineParams,
    /// Memory latencies.
    pub latency: LatencyTable,
    /// Optional per-processor data TLB (the ISM ablation).
    pub tlb: Option<TlbConfig>,
    /// RNG seed for the run.
    pub seed: u64,
    /// Cycles between OS clock ticks on each processor.
    pub tick_period: u64,
    /// Busy cycles charged per tick handler.
    pub tick_cost: u64,
    /// Default cycle width of one interval sample — what an attached
    /// `IntervalSampler` should use unless an experiment picks its own
    /// (Figure 10's "100 ms").
    pub sample_interval: u64,
    /// Scheduler time quantum in cycles (Solaris TS-class preemption).
    /// A running thread is preempted at the next step boundary once its
    /// quantum expires and another thread is ready.
    pub quantum: u64,
    /// Kernel cycles charged per context switch.
    pub ctx_switch_cost: u64,
    /// Affinity rechoose interval: a ready thread is only migrated to a
    /// foreign processor after waiting this long (Solaris
    /// `rechoose_interval`); before that, a free foreign processor lets
    /// it wait for its home processor.
    pub rechoose: u64,
}

impl MachineConfig {
    /// An E6000-like machine with the benchmark bound to `pset` of 16
    /// processors.
    ///
    /// # Panics
    ///
    /// Panics if `pset` is 0 or greater than 16.
    pub fn e6000(pset: usize) -> Self {
        MachineConfig {
            hierarchy: HierarchyConfig::e6000(16).expect("16-cpu E6000 config"),
            pset,
            pipeline: PipelineParams::default(),
            latency: LatencyTable::e6000(),
            tlb: None,
            seed: 1,
            tick_period: 250_000,
            tick_cost: 1_500,
            sample_interval: 24_800_000, // 100 ms at 248 MHz
            quantum: 40_000_000,         // ~160 ms (compute-bound TS threads)
            ctx_switch_cost: 3_000,
            rechoose: 0,
        }
    }

    /// Same machine but with exactly `cpus` processors (no spare OS
    /// processors) — used by the shared-cache topology experiments where
    /// the hierarchy itself is the subject.
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is zero.
    pub fn dedicated(hierarchy: HierarchyConfig) -> Self {
        let cpus = hierarchy.cpus;
        MachineConfig {
            hierarchy,
            pset: cpus,
            ..MachineConfig::e6000(1)
        }
    }

    fn sched_params(&self) -> SchedParams {
        SchedParams {
            quantum: self.quantum,
            ctx_switch_cost: self.ctx_switch_cost,
            rechoose: self.rechoose,
        }
    }
}

/// The simulated machine driving a workload.
pub struct Machine<W: Workload> {
    cfg: MachineConfig,
    workload: W,
    mem: MemorySystem,
    timers: Vec<CpuTimer>,
    tlbs: Option<Vec<Tlb>>,
    rng: SimRng,
    next_tick: u64,
    acct: Accounting,
    sched: Scheduler,
    gc: GcDriver,
    observers: ObserverSet,
    /// Next virtual time an attached `IntervalSampler` wants the
    /// counter tree snapshotted (`u64::MAX` when nothing samples).
    next_sample: u64,
    /// Sampled-simulation state, present between `begin_sampling` and
    /// `end_sampling`. When its `fast` flag is set, steps take the
    /// functional fast-forward path instead of detailed timing.
    sampling: Option<Box<SamplingState>>,
}

/// Sink wiring one step's references into the memory system and a CPU
/// timer, optionally through a TLB, and past the attached observers.
struct StepSink<'a> {
    mem: &'a mut MemorySystem,
    timer: &'a mut CpuTimer,
    tlb: Option<&'a mut Tlb>,
    cpu: usize,
    observers: &'a mut ObserverSet,
    source: AccessSource,
    base_clock: u64,
    start_cycles: u64,
    /// Whether the memory backend wants the requester's clock before
    /// each access ([`MemorySystem::needs_clock`]); cached so flat
    /// backends pay nothing on the hot path.
    clocked: bool,
    /// Signature accumulator during a sampled run (detailed units are
    /// fingerprinted too, so cluster assignment sees every unit).
    sig: Option<&'a mut SignatureCollector>,
}

impl MemSink for StepSink<'_> {
    fn instructions(&mut self, n: u64) {
        self.timer.retire(n);
        if let Some(sig) = &mut self.sig {
            sig.instructions(n);
        }
        if !self.observers.is_empty() {
            self.observers.instructions(self.cpu, n, self.source);
        }
    }

    fn access(&mut self, kind: AccessKind, addr: Addr) {
        if let Some(sig) = &mut self.sig {
            sig.access(self.cpu, kind, addr);
        }
        if kind.is_data() {
            if let Some(tlb) = &mut self.tlb {
                let stall = tlb.access(addr);
                if stall > 0 {
                    self.timer.stall_extra(stall);
                }
            }
        }
        if self.clocked {
            // The issuing processor's clock at this access: step-start
            // clock plus cycles charged so far within the step.
            self.mem
                .set_now(self.base_clock + (self.timer.cycles() - self.start_cycles));
        }
        let outcome = self.mem.access(self.cpu, kind, addr);
        let charge = match kind {
            AccessKind::Ifetch => self.timer.ifetch(&outcome),
            AccessKind::Load => self.timer.load(&outcome),
            AccessKind::Store => self.timer.store(&outcome),
        };
        if !self.observers.is_empty() {
            // The issuing processor's time: its clock at step start plus
            // the cycles the timer has charged since (including this
            // access's own latency, so a c2c lands in the bucket where
            // the transfer completed).
            let now = self.base_clock + (self.timer.cycles() - self.start_cycles);
            self.observers.access(&AccessEvent {
                cpu: self.cpu,
                kind,
                addr,
                outcome: &outcome,
                now,
                source: self.source,
                charge,
            });
        }
    }
}

impl<W: Workload> Machine<W> {
    /// Builds a machine around a workload.
    ///
    /// # Panics
    ///
    /// Panics if the processor set is empty or exceeds the machine size.
    pub fn new(cfg: MachineConfig, workload: W) -> Self {
        let cpus = cfg.hierarchy.cpus;
        let sched = Scheduler::new(
            cfg.sched_params(),
            sysos::sched::ProcessorSet::first_n(cfg.pset, cpus),
            cpus,
            workload.thread_count(),
            workload.lock_table(),
        );
        Machine {
            mem: MemorySystem::new(cfg.hierarchy),
            timers: (0..cpus)
                .map(|_| CpuTimer::new(cfg.pipeline, cfg.latency))
                .collect(),
            tlbs: cfg.tlb.map(|t| (0..cpus).map(|_| Tlb::new(t)).collect()),
            rng: SimRng::seed_from_u64(cfg.seed),
            next_tick: cfg.tick_period,
            acct: Accounting::new(cpus),
            sched,
            gc: GcDriver::new(),
            observers: ObserverSet::new(),
            next_sample: u64::MAX,
            sampling: None,
            workload,
            cfg,
        }
    }

    /// The workload (for inspection).
    pub fn workload(&self) -> &W {
        &self.workload
    }

    /// Mutable workload access (e.g. re-tuning between windows).
    pub fn workload_mut(&mut self) -> &mut W {
        &mut self.workload
    }

    /// The memory system (for inspection).
    pub fn memory(&self) -> &MemorySystem {
        &self.mem
    }

    /// Drains the memory backend's buffered DRAM queue-stall episodes
    /// `(start, end)` for the run-observatory timeline. Empty unless
    /// the banked-DRAM backend is configured and stalled.
    pub fn take_dram_stall_episodes(&mut self) -> Vec<(u64, u64)> {
        self.mem.take_dram_stall_episodes()
    }

    /// The clock/mode accounting (for inspection).
    pub fn accounting(&self) -> &Accounting {
        &self.acct
    }

    /// Processors in the benchmark's set.
    pub(crate) fn pset_cpus(&self) -> &[usize] {
        self.sched.pset().cpus()
    }

    /// CPI report of one processor's timer.
    pub(crate) fn timer_report(&self, cpu: usize) -> CpiReport {
        self.timers[cpu].report()
    }

    /// Attaches an observer; redeem the handle after the run with
    /// [`Machine::observer`]. An observer that asks for interval
    /// sampling ([`SimObserver::interval_cycles`]) is baselined with
    /// the current counter tree immediately.
    pub fn attach_observer<T: SimObserver>(&mut self, observer: T) -> ObserverHandle<T> {
        let samples = observer.interval_cycles().is_some();
        let handle = self.observers.attach(observer);
        if samples {
            let now = self.time();
            let snap = self.counters();
            self.observers.get_mut(handle).on_counter_sample(now, &snap);
            self.schedule_sample(now);
        }
        handle
    }

    /// Recomputes the next sampling boundary after `now`.
    fn schedule_sample(&mut self, now: u64) {
        self.next_sample = match self.observers.min_interval() {
            Some(w) => (now / w + 1) * w,
            None => u64::MAX,
        };
    }

    /// Enables the machine's latency histograms: memory-access latency
    /// (costs from the machine's own latency table) and per-store drain
    /// time on every processor. Both reset with `begin_measurement`.
    pub fn enable_latency_hists(&mut self) {
        let lat = self.cfg.latency;
        self.mem.enable_latency_hist(LatencyCosts {
            l1: lat.stall_for(HitLevel::L1),
            l2: lat.stall_for(HitLevel::L2),
            upgrade: lat.stall_for(HitLevel::Upgrade),
            c2c: lat.stall_for(HitLevel::CacheToCache),
            memory: lat.stall_for(HitLevel::Memory),
        });
        for t in &mut self.timers {
            t.enable_drain_hist();
        }
    }

    /// The memory-access latency histogram, if enabled.
    pub fn latency_hist(&self) -> Option<&Histogram> {
        self.mem.latency_hist()
    }

    /// The store drain-time histogram merged over the benchmark's
    /// processors, if enabled.
    pub fn drain_hist(&self) -> Option<Histogram> {
        let mut merged = Histogram::new();
        let mut any = false;
        for &c in self.sched.pset().cpus() {
            if let Some(h) = self.timers[c].drain_hist() {
                merged.merge(h);
                any = true;
            }
        }
        any.then_some(merged)
    }

    /// The observer behind `handle`.
    ///
    /// # Panics
    ///
    /// Panics if the handle belongs to a different machine.
    pub fn observer<T: SimObserver>(&self, handle: ObserverHandle<T>) -> &T {
        self.observers.get(handle)
    }

    /// Mutable access to the observer behind `handle`.
    ///
    /// # Panics
    ///
    /// Panics if the handle belongs to a different machine.
    pub fn observer_mut<T: SimObserver>(&mut self, handle: ObserverHandle<T>) -> &mut T {
        self.observers.get_mut(handle)
    }

    /// Current virtual time: the slowest running processor's clock (all
    /// processors' progress is bounded below by it).
    pub fn time(&self) -> u64 {
        self.sched.time(&self.acct)
    }

    /// Completed transactions since construction.
    pub fn transactions(&self) -> u64 {
        self.acct.transactions()
    }

    /// Collections since construction.
    pub fn gc_count(&self) -> u64 {
        self.gc.gc_count()
    }

    /// GC intervals `(start, end)` in cycles since the last window reset.
    pub fn gc_intervals(&self) -> &[(u64, u64)] {
        self.gc.intervals()
    }

    /// Background OS clock tick across every machine processor: each
    /// handler dirties a per-processor line and the global run-queue /
    /// time-of-day lines (shared kernel state).
    fn os_tick(&mut self, at: u64) {
        // Kernel lines live in a reserved low region no workload uses.
        const KERNEL_GLOBALS: u64 = 0x0000_F000;
        if self.mem.needs_clock() {
            self.mem.set_now(at);
        }
        let cpus = self.acct.cpus();
        for cpu in 0..cpus {
            let refs = [
                (AccessKind::Store, Addr(KERNEL_GLOBALS)),
                (AccessKind::Load, Addr(KERNEL_GLOBALS + 64)),
                (AccessKind::Store, Addr(0x1_0000 + (cpu as u64) * 64)),
            ];
            for (kind, addr) in refs {
                let outcome = self.mem.access(cpu, kind, addr);
                if !self.observers.is_empty() {
                    self.observers.access(&AccessEvent {
                        cpu,
                        kind,
                        addr,
                        outcome: &outcome,
                        now: at,
                        source: AccessSource::KernelTick,
                        charge: simcpu::StallCharge::default(),
                    });
                }
            }
            // Tick handlers interrupt whatever the cpu is doing.
            self.acct.advance(cpu, ExecMode::System, self.cfg.tick_cost);
        }
    }

    /// Runs one thread's step on `cpu`; returns the step's control so
    /// callers can decide whether the thread can keep going.
    fn step_thread(&mut self, cpu: usize) -> Control {
        let thread = self.sched.thread_on(cpu).expect("step_thread on busy cpu");
        let fast = self.sampling.as_deref().is_some_and(|s| s.fast);
        let (result, delta) = if fast {
            self.step_fast(thread, cpu)
        } else {
            self.step_detailed(thread, cpu)
        };
        self.acct.advance(cpu, result.mode, delta);

        match result.control {
            Control::Continue => self.sched.maybe_preempt(cpu, &mut self.acct),
            Control::TxDone => {
                self.acct.tx_done();
                self.observers.tx_done(cpu, self.acct.clock(cpu));
                self.sched.maybe_preempt(cpu, &mut self.acct);
            }
            Control::Acquire(lock) => self.sched.acquire(thread, cpu, lock.0, result.mode),
            Control::Release(lock) => self.sched.release(cpu, lock.0, &mut self.acct),
            Control::IoWait(cycles) => {
                let until = self.acct.clock(cpu) + cycles;
                self.sched.sleep(cpu, until);
            }
            Control::NeedsGc => self.run_gc(cpu),
            Control::Done => self.sched.finish(cpu),
        }
        result.control
    }

    /// One step through the detailed timing path (the default).
    fn step_detailed(&mut self, thread: usize, cpu: usize) -> (StepResult, u64) {
        let before = self.timers[cpu].report().cycles();
        let clocked = self.mem.needs_clock();
        let result = {
            let mut sink = StepSink {
                mem: &mut self.mem,
                timer: &mut self.timers[cpu],
                tlb: self.tlbs.as_mut().map(|t| &mut t[cpu]),
                cpu,
                observers: &mut self.observers,
                source: AccessSource::Workload,
                base_clock: self.acct.clock(cpu),
                start_cycles: before,
                clocked,
                sig: self.sampling.as_deref_mut().map(|s| &mut s.sig),
            };
            let mut ctx = StepCtx {
                sink: &mut sink,
                rng: &mut self.rng,
                now: self.acct.clock(cpu),
            };
            self.workload.step(thread, &mut ctx)
        };
        let delta = self.timers[cpu].report().cycles() - before;
        (result, delta)
    }

    /// One step through the functional fast-forward path: the workload
    /// executes exactly as in detail (same RNG draws, same control
    /// flow), but references only warm the caches and charge a
    /// calibrated stall estimate instead of detailed timing.
    fn step_fast(&mut self, thread: usize, cpu: usize) -> (StepResult, u64) {
        let Machine {
            mem,
            workload,
            rng,
            acct,
            sampling,
            ..
        } = self;
        let state = sampling.as_deref_mut().expect("fast step without sampling");
        let mut sink = FastSink::new(mem, state, cpu, acct.clock(cpu));
        let result = {
            let mut ctx = StepCtx {
                sink: &mut sink,
                rng,
                now: acct.clock(cpu),
            };
            workload.step(thread, &mut ctx)
        };
        let delta = sink.charge();
        (result, delta)
    }

    /// Stop-the-world collection on `cpu`.
    fn run_gc(&mut self, cpu: usize) {
        let Machine {
            mem,
            timers,
            tlbs,
            workload,
            observers,
            gc,
            acct,
            sched,
            sampling,
            ..
        } = self;
        let fast = sampling.as_deref().is_some_and(|s| s.fast);
        let (start, end) = if fast {
            let state = sampling.as_deref_mut().expect("fast gc without sampling");
            gc.collect(acct, sched.pset(), cpu, |at| {
                let mut sink = FastSink::new(mem, state, cpu, at);
                workload.collect(&mut sink);
                sink.charge()
            })
        } else {
            let sig = sampling.as_deref_mut().map(|s| &mut s.sig);
            let before = timers[cpu].report().cycles();
            let clocked = mem.needs_clock();
            gc.collect(acct, sched.pset(), cpu, |at| {
                {
                    let mut sink = StepSink {
                        mem,
                        timer: &mut timers[cpu],
                        tlb: tlbs.as_mut().map(|t| &mut t[cpu]),
                        cpu,
                        observers,
                        source: AccessSource::Collector,
                        base_clock: at,
                        start_cycles: before,
                        clocked,
                        sig,
                    };
                    workload.collect(&mut sink);
                }
                timers[cpu].report().cycles() - before
            })
        };
        self.observers.gc_interval(start, end);
    }

    /// Advances the machine until virtual time `horizon`.
    ///
    /// # Panics
    ///
    /// Panics on deadlock (all threads blocked with no sleeper to wake).
    pub fn run_until(&mut self, horizon: u64) {
        loop {
            self.sched.dispatch(&mut self.acct);
            let now = self.time();
            if self.sched.running_cpus().next().is_none() {
                // Nothing running: wake the earliest sleeper or give up.
                match self.sched.earliest_wake() {
                    Some(wake) => {
                        self.sched.wake_sleepers(wake);
                        self.sched.dispatch(&mut self.acct);
                    }
                    None => {
                        assert!(
                            self.sched.has_ready(),
                            "deadlock: no runnable, sleeping or ready thread"
                        );
                        continue;
                    }
                }
            }
            let now = self.time().max(now);
            if now >= horizon {
                break;
            }
            self.sched.wake_sleepers(now);
            while self.next_tick <= now {
                let at = self.next_tick;
                self.os_tick(at);
                self.next_tick += self.cfg.tick_period;
            }
            // Interval sampling: when virtual time crossed a boundary,
            // snapshot the whole counter tree once and deliver it. The
            // snapshot only *reads* state, so sampling cannot perturb
            // the run (determinism.rs proves bit-identity).
            if now >= self.next_sample {
                let snap = self.counters();
                self.observers.counter_sample(now, &snap);
                self.schedule_sample(now);
            }
            // Step the slowest steppable processor (spinners wait for
            // their lock grant; stepping them would violate the
            // acquire contract).
            let Some(cpu) = self
                .sched
                .steppable_cpus()
                .min_by_key(|&c| self.acct.clock(c))
            else {
                // Only spinners are running: their holders must be among
                // ready/sleeping threads; force progress by dispatching
                // or waking.
                match self.sched.earliest_wake() {
                    Some(wake) => self.sched.wake_sleepers(wake),
                    None => assert!(
                        self.sched.has_ready(),
                        "livelock: every running thread spins and nothing can release"
                    ),
                }
                continue;
            };
            let control = self.step_thread(cpu);
            // Fast-forward batching: a full scheduler round per step
            // would dominate the functional path's cost, so in fast
            // mode a thread that keeps computing is stepped several
            // more times before control returns to the round. The rule
            // is fixed (so determinism is untouched), the batch never
            // crosses the horizon, the next OS tick or the next
            // counter-sample boundary, and it ends the moment the
            // thread blocks, finishes, or is preempted off the cpu.
            if self.sampling.as_deref().is_some_and(|s| s.fast)
                && matches!(control, Control::Continue | Control::TxDone)
            {
                const FAST_BATCH: u32 = 16;
                let bound = horizon.min(self.next_tick).min(self.next_sample);
                for _ in 1..FAST_BATCH {
                    if self.acct.clock(cpu) >= bound || self.sched.thread_on(cpu).is_none() {
                        break;
                    }
                    match self.step_thread(cpu) {
                        Control::Continue | Control::TxDone => {}
                        _ => break,
                    }
                }
            }
        }
        // Close the books: idle-fill every benchmark processor to the
        // horizon so mode fractions cover the whole window.
        for &c in self.sched.pset().cpus() {
            self.acct.fill(c, horizon, ExecMode::Idle);
        }
    }

    /// Ends the warm-up phase: resets all measured statistics while
    /// keeping caches, heap and scheduler state warm.
    pub fn begin_measurement(&mut self) {
        self.mem.reset_stats();
        self.workload.reset_response_hist();
        for t in &mut self.timers {
            t.reset();
        }
        let now = self.time();
        self.acct.begin_window(now);
        self.gc.begin_window();
        self.observers.window_reset(now);
        // Re-baseline any interval samplers on the freshly reset
        // counters so the first interval starts at the window edge.
        if self.observers.min_interval().is_some() {
            let snap = self.counters();
            self.observers.counter_sample(now, &snap);
            self.schedule_sample(now);
        }
    }

    /// Arms the sampled-execution machinery: the functional
    /// fast-forward clock charges `base_q8` (Q56.8 cycles per
    /// reference, the calibrated short-stall share) plus the machine's
    /// own latency-table cost per warming-access outcome. The machine
    /// starts in detailed mode; flip with [`Machine::set_fast_forward`].
    pub(crate) fn begin_sampling(&mut self, warm_every: u32, base_q8: u64) {
        self.sampling = Some(Box::new(SamplingState::new(
            warm_every,
            base_q8,
            self.cfg.latency,
        )));
    }

    /// Tears the sampled-execution machinery down (detailed stepping
    /// resumes unconditionally).
    pub(crate) fn end_sampling(&mut self) {
        self.sampling = None;
    }

    /// Switches between functional fast-forward and detailed stepping.
    ///
    /// # Panics
    ///
    /// Panics unless [`Machine::begin_sampling`] armed the machinery.
    pub(crate) fn set_fast_forward(&mut self, on: bool) {
        self.sampling
            .as_deref_mut()
            .expect("set_fast_forward without begin_sampling")
            .fast = on;
    }

    /// The fast path's current per-reference short-stall estimate (Q8).
    pub(crate) fn fast_base_q8(&self) -> u64 {
        self.sampling.as_deref().map_or(0, |s| s.base_q8)
    }

    /// Re-calibrates the fast path's per-reference short-stall estimate.
    pub(crate) fn set_fast_base_q8(&mut self, q8: u64) {
        if let Some(s) = self.sampling.as_deref_mut() {
            s.base_q8 = q8;
        }
    }

    /// Adjusts the functional-warming subsample factor mid-run (the
    /// pre-warming ramp ahead of a scheduled detailed unit warms every
    /// reference).
    pub(crate) fn set_warm_every(&mut self, n: u32) {
        if let Some(s) = self.sampling.as_deref_mut() {
            s.warm_every = n.max(1);
        }
    }

    /// Drains the signature counters accumulated since the last drain
    /// (zeroes if sampling is not armed).
    pub(crate) fn drain_signature(&mut self) -> SigCounts {
        self.sampling
            .as_deref_mut()
            .map(|s| s.sig.drain())
            .unwrap_or_default()
    }

    /// GC cycles since the last window reset.
    pub(crate) fn window_gc_cycles(&self) -> u64 {
        self.gc.window_gc_cycles()
    }

    /// Brings a clocked memory backend's notion of "now" up to virtual
    /// time — after a fast-forwarded span, the DRAM clock would
    /// otherwise lag and the next detailed access would see a
    /// phantom-busy queue.
    pub(crate) fn sync_memory_clock(&mut self) {
        if self.mem.needs_clock() {
            let now = self.time();
            self.mem.set_now(now);
        }
    }

    /// Produces the report for the current measurement window.
    pub fn window_report(&self) -> WindowReport {
        let cycles = self.time().saturating_sub(self.acct.window_start());
        let mut cpi = CpiReport::default();
        for &c in self.sched.pset().cpus() {
            cpi = cpi.merge(&self.timers[c].report());
        }
        WindowReport {
            transactions: self.acct.window_transactions(),
            cycles,
            cpi,
            modes: self.acct.pset_breakdown(self.sched.pset()),
            gc_cycles: self.gc.window_gc_cycles(),
            gc_count: self.gc.window_gc_count(),
            c2c_ratio: self.mem.stats().c2c_ratio(),
            snoop_filter_rate: self.mem.bus_stats().snoop_filter_rate(),
        }
    }
}
