//! Sampled simulation: signature-picked sample units, functional
//! fast-forward, and CI-bounded extrapolation.
//!
//! The full-detail spine simulates every cycle of every window. This
//! module adds the statistical alternative the paper's own methodology
//! (and the SMARTS/SimPoint line of work) uses for long middleware
//! runs:
//!
//! 1. the measurement window is segmented into fixed-cycle **units**;
//! 2. every unit — fast or detailed — is fingerprinted with a
//!    **memory-access-signature vector** (reference mix, working-set
//!    reuse, cross-processor sharing, GC activity, transaction rate),
//!    following the "Memory Access Vectors" insight that memory-system
//!    fidelity needs samples picked by access signature, not just
//!    instruction position;
//! 3. units are **clustered online** (deterministic leader clustering —
//!    no RNG is consumed, so sampled runs stay bit-identical at any
//!    plan worker count) and representatives of each cluster are
//!    simulated in detail, each behind a detailed warming prefix;
//! 4. the remaining units **fast-forward functionally**: the workload
//!    executes every step (so heap, scheduler, locks and transaction
//!    counts stay exact) and every `warm_every`-th reference runs as a
//!    real, timing-discarded access so cache contents, MESI sharer
//!    state and dirty lines keep evolving; time advances by
//!    **outcome-weighted charging** — each warming access is charged
//!    the same latency-table cost the detailed timer would have used
//!    for its hit level, so a miss-heavy thread's fast clock runs as
//!    slow as its detailed clock would (a flat per-reference average
//!    distorts thread interleaving);
//! 5. per-unit measurements extrapolate to the whole window via
//!    [`simstats::extrapolate`] — cluster populations are the stratum
//!    weights and every point estimate carries a confidence interval.
//!
//! What is exact and what is estimated: transaction counts, GC
//! activity and mode fractions are *exact* (the workload runs for the
//! whole window); timing-derived metrics — CPI, miss rates, latency
//! distributions — are *estimated* from the detailed units, which is
//! precisely what the differential validator
//! (`figures validate-sampled`) bounds against a full run.

use memsys::{AccessKind, Addr, BatchRef, MemSink, MemorySystem};
use probes::registry::Snapshot;
use probes::runlog::{EventRecord, SampleUnitRecord};
use probes::Histogram;
use simcpu::{CpiReport, LatencyTable};
use simstats::extrapolate::{stratified, Estimate, Stratum};
use workloads::model::Workload;

use super::accounting::WindowReport;
use super::kernel::Machine;

/// How a figure driver executes its measurement windows.
#[derive(Debug, Clone, PartialEq)]
pub enum SimMode {
    /// Simulate every cycle in detail (the default).
    Full,
    /// Fast-forward between signature-picked sample units.
    Sampled(SamplingConfig),
}

impl Default for SimMode {
    fn default() -> Self {
        SimMode::Full
    }
}

impl SimMode {
    /// Whether this mode samples.
    pub fn is_sampled(&self) -> bool {
        matches!(self, SimMode::Sampled(_))
    }
}

/// Knobs of the sampled-execution path.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplingConfig {
    /// Cycle width of one sample unit.
    pub unit_cycles: u64,
    /// Detailed (unmeasured) warming prefix inside each measured unit,
    /// letting cache/TLB recency recover from the fast-forward before
    /// statistics count.
    pub warm_cycles: u64,
    /// Stratified floor: at least this many units are measured, spread
    /// across the window by stride.
    pub min_units: usize,
    /// Soft ceiling on stride-selected measured units (newly discovered
    /// clusters may still claim detail past it).
    pub max_units: usize,
    /// Euclidean distance below which a unit joins an existing
    /// signature cluster instead of founding a new one.
    pub threshold: f64,
    /// Detailed calibration prefix at the start of warm-up, from which
    /// the fast path's short-stall (store-buffer + RAW-hazard)
    /// per-reference estimate is derived.
    pub calibration_cycles: u64,
    /// Every n-th fast-path reference executes as a real
    /// (timing-discarded) access (1 = every reference). Subsampling
    /// keeps the functional-warming cost bounded while cache contents,
    /// sharer state and dirty lines still evolve; each warming access
    /// charges its outcome's cost times this factor, standing in for
    /// the skipped references.
    pub warm_every: u32,
    /// Units after a collection that are forced into detail and binned
    /// as their own *recovery* stratum. The post-GC cold-cache
    /// transient (the collector evicted the mutators' working set)
    /// carries a miss rate far above steady state while its *behavior*
    /// signature looks perfectly ordinary — left to signature
    /// clustering, one measured recovery unit poisons the dominant
    /// steady-state stratum's mean and biases every miss-rate estimate
    /// high.
    pub recovery_units: usize,
}

impl SamplingConfig {
    /// Defaults scaled to a measurement window of `window` cycles. The
    /// floor matters at quick effort: units below ~1M cycles measure
    /// mostly their own warming transient and the error bound slips.
    pub fn for_window(window: u64) -> Self {
        let unit_cycles = (window / 100).max(1_000_000);
        // Coverage scales with the schedule length: long windows (many
        // units) keep at least ~1 measured unit in 4 so no stratum's
        // weight rests on a single noisy measurement.
        let total_units = (window / unit_cycles).max(1) as usize;
        let min_units = 10.max(total_units / 4);
        SamplingConfig {
            unit_cycles,
            warm_cycles: unit_cycles / 2,
            min_units,
            max_units: 2 * min_units,
            threshold: 0.20,
            calibration_cycles: 2_000_000.min(window / 4).max(250_000),
            warm_every: 4,
            // The post-GC transient decays over a few Mcycles — a few
            // units at any window length, since units scale with the
            // window.
            recovery_units: 3,
        }
    }
}

/// Table slots in the signature working-set sketch (direct-mapped).
const SIG_TABLE: usize = 4096;
/// Sentinel for an empty sketch slot.
const SIG_EMPTY: u64 = u64::MAX;
/// Feature-vector dimension.
pub const SIG_DIMS: usize = 7;

/// Accumulates the memory-access signature of the unit in flight.
///
/// The working-set sketch is a direct-mapped table of (line, last-cpu)
/// pairs: a re-reference that still finds its line is a short-reuse
/// hit, and one that finds it last touched by a *different* processor
/// is the sharing signal (the Figure 8+ communication dimension). The
/// sketch persists across units — like the caches it proxies — while
/// the counters drain at every unit boundary.
pub struct SignatureCollector {
    instrs: u64,
    loads: u64,
    stores: u64,
    ifetches: u64,
    reuse_hits: u64,
    shared_hits: u64,
    table: Box<[u64; SIG_TABLE]>,
}

impl SignatureCollector {
    pub(crate) fn new() -> Self {
        SignatureCollector {
            instrs: 0,
            loads: 0,
            stores: 0,
            ifetches: 0,
            reuse_hits: 0,
            shared_hits: 0,
            table: Box::new([SIG_EMPTY; SIG_TABLE]),
        }
    }

    #[inline]
    pub(crate) fn instructions(&mut self, n: u64) {
        self.instrs += n;
    }

    #[inline]
    pub(crate) fn access(&mut self, cpu: usize, kind: AccessKind, addr: Addr) {
        match kind {
            AccessKind::Ifetch => self.ifetches += 1,
            AccessKind::Load => self.loads += 1,
            AccessKind::Store => self.stores += 1,
        }
        let line = addr.0 >> memsys::LINE_BITS;
        let idx = (line.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 52) as usize;
        let entry = self.table[idx];
        if entry != SIG_EMPTY && (entry >> 8) == line {
            self.reuse_hits += 1;
            if (entry & 0xFF) as usize != cpu {
                self.shared_hits += 1;
            }
        }
        self.table[idx] = (line << 8) | (cpu as u64 & 0xFF);
    }

    /// Drains the per-unit counters (the sketch itself persists, like
    /// the warmed caches it stands in for).
    pub(crate) fn drain(&mut self) -> SigCounts {
        let c = SigCounts {
            instrs: self.instrs,
            loads: self.loads,
            stores: self.stores,
            ifetches: self.ifetches,
            reuse_hits: self.reuse_hits,
            shared_hits: self.shared_hits,
        };
        self.instrs = 0;
        self.loads = 0;
        self.stores = 0;
        self.ifetches = 0;
        self.reuse_hits = 0;
        self.shared_hits = 0;
        c
    }
}

/// Raw signature counts of one unit.
#[derive(Debug, Clone, Copy, Default)]
pub struct SigCounts {
    /// Instructions stepped in the unit.
    pub instrs: u64,
    /// Data loads referenced.
    pub loads: u64,
    /// Data stores referenced.
    pub stores: u64,
    /// Instruction fetches referenced.
    pub ifetches: u64,
    /// References that re-found their line in the sketch.
    pub reuse_hits: u64,
    /// Reuse hits whose line was last touched by another processor.
    pub shared_hits: u64,
}

/// A unit's memory-access-signature vector (all components ~0..1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Signature(pub [f64; SIG_DIMS]);

impl Signature {
    /// Builds the feature vector from raw counts plus the unit's GC
    /// cycles and completed transactions.
    pub fn from_counts(c: &SigCounts, unit_cycles: u64, gc_cycles: u64, transactions: u64) -> Self {
        let refs = (c.loads + c.stores + c.ifetches) as f64;
        let instrs = c.instrs.max(1) as f64;
        let cycles = unit_cycles.max(1) as f64;
        let safe = |num: f64| if refs > 0.0 { num / refs } else { 0.0 };
        let tx_per_mcycle = transactions as f64 * 1e6 / cycles;
        Signature([
            // Memory intensity: references per instruction.
            (refs / instrs).min(2.0) / 2.0,
            // Write fraction of the reference stream.
            safe(c.stores as f64),
            // Instruction-fetch fraction.
            safe(c.ifetches as f64),
            // Footprint churn: fraction of references missing the
            // working-set sketch.
            safe(refs - c.reuse_hits as f64),
            // Sharing: sketch hits last touched by another processor.
            safe(c.shared_hits as f64),
            // GC share of the unit.
            (gc_cycles as f64 / cycles).min(1.0),
            // Transaction rate, squashed to 0..1.
            tx_per_mcycle / (tx_per_mcycle + 50.0),
        ])
    }

    /// Euclidean distance to another signature.
    pub fn distance(&self, other: &Signature) -> f64 {
        self.0
            .iter()
            .zip(&other.0)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }
}

/// Online leader clustering: the first member of each cluster is its
/// fixed leader, units join the nearest leader within the threshold.
/// Deterministic (insertion order, no RNG) so sampled runs replay
/// bit-for-bit.
struct Leaders {
    sigs: Vec<Signature>,
    pop: Vec<u64>,
    measured: Vec<u32>,
    /// Special-purpose strata (e.g. the post-GC recovery transient):
    /// invisible to signature assignment, their members are selected by
    /// *when* they run, not what their signature looks like.
    special: Vec<bool>,
    threshold: f64,
}

impl Leaders {
    fn new(threshold: f64) -> Self {
        Leaders {
            sigs: Vec::new(),
            pop: Vec::new(),
            measured: Vec::new(),
            special: Vec::new(),
            threshold,
        }
    }

    fn assign(&mut self, sig: &Signature) -> usize {
        let mut best = None;
        for (i, leader) in self.sigs.iter().enumerate() {
            if self.special[i] {
                continue;
            }
            let d = leader.distance(sig);
            match best {
                Some((_, bd)) if bd <= d => {}
                _ => best = Some((i, d)),
            }
        }
        match best {
            Some((i, d)) if d <= self.threshold => {
                self.pop[i] += 1;
                i
            }
            _ => {
                self.sigs.push(*sig);
                self.pop.push(1);
                self.measured.push(0);
                self.special.push(false);
                self.sigs.len() - 1
            }
        }
    }

    /// Assigns a unit to the dedicated stratum behind `slot`, founding
    /// it on first use. A unit in a special stratum never contaminates
    /// the signature clusters — cache-state transients look behaviorally
    /// ordinary, so signature distance cannot keep them apart.
    fn assign_special(&mut self, slot: &mut Option<usize>, sig: &Signature) -> usize {
        match *slot {
            Some(i) => {
                self.pop[i] += 1;
                i
            }
            None => {
                self.sigs.push(*sig);
                self.pop.push(1);
                self.measured.push(0);
                self.special.push(true);
                let i = self.sigs.len() - 1;
                *slot = Some(i);
                i
            }
        }
    }

    /// Whether the cluster has population but no detailed measurement.
    fn hungry(&self, cluster: usize) -> bool {
        self.measured[cluster] == 0
    }
}

/// Live state of the sampled execution path, owned by the [`Machine`].
pub(crate) struct SamplingState {
    /// Whether steps currently take the functional fast path.
    pub(crate) fast: bool,
    /// Calibrated short-stall estimate per reference — the store-buffer
    /// and RAW-hazard cycles the outcome costs don't cover — in 1/256
    /// cycles (Q56.8 fixed point keeps the clock deterministic — no
    /// floats).
    pub(crate) base_q8: u64,
    /// The machine's latency table: warming accesses charge the same
    /// per-outcome cost the detailed timer would.
    pub(crate) lat: LatencyTable,
    /// The signature accumulator (fed by both paths).
    pub(crate) sig: SignatureCollector,
    /// Execute every n-th fast-path reference as a real warming access.
    pub(crate) warm_every: u32,
    /// Rolling counter for the warm subsample.
    pub(crate) warm_tick: u32,
}

impl SamplingState {
    pub(crate) fn new(warm_every: u32, base_q8: u64, lat: LatencyTable) -> Self {
        SamplingState {
            fast: false,
            base_q8,
            lat,
            sig: SignatureCollector::new(),
            warm_every: warm_every.max(1),
            warm_tick: 0,
        }
    }
}

/// The functional fast-forward sink: instructions charge one cycle
/// each, references feed the signature and charge the calibrated
/// short-stall base. Every `warm_every`-th reference executes as a
/// *real* (timing-discarded) access so cache contents, MESI sharer
/// state and dirty-line population keep evolving across the fast span —
/// without this, writeback and coherence traffic in the next measured
/// unit starts from a frozen snapshot and timing-sensitive backends
/// (banked DRAM) see far too little pressure. Each warming access also
/// charges `warm_every` times the latency-table cost of its own
/// outcome — the same cost the detailed timer stalls loads and
/// ifetches by — standing in for the skipped references. The
/// outcome-weighted charge is what keeps per-thread fast clocks
/// honest: under a flat per-reference average, miss-heavy threads
/// advance too fast and the thread interleaving (hence the measured
/// units' behavior) drifts from the full run. The references in
/// between charge only the base and touch no simulated state; the
/// detailed warming prefix inside each measured unit restores exact
/// recency before statistics count.
///
/// Warming accesses are not issued one by one: they queue in a small
/// buffer and drain through [`MemorySystem::access_batch`], whose
/// lookahead warms the hierarchy's metadata ahead of each access. The
/// batch is an *execution* reordering only — nothing else in the fast
/// path reads memory-system state mid-step, and the clock stamp each
/// buffered access would have carried is reconstructed exactly at
/// flush time from its charge snapshot plus the outcome-priced charges
/// of the buffered accesses that preceded it (the same prefix sum the
/// scalar loop accumulated in place), so a batched fast span is
/// bit-identical to the scalar one. [`FastSink::charge`] flushes, and
/// every step ends by asking for its charge, so no access outlives its
/// step.
pub(crate) struct FastSink<'a> {
    mem: &'a mut MemorySystem,
    state: &'a mut SamplingState,
    cpu: usize,
    charge: u64,
    charge_q8: u64,
    /// The issuing processor's clock at step start; warming accesses on
    /// a clocked backend are stamped `base_clock + charge()` so the
    /// DRAM sees them spread across the span rather than as one burst.
    base_clock: u64,
    clocked: bool,
    /// Queued warming accesses awaiting an `access_batch` drain.
    refs: Vec<BatchRef>,
    /// Per-queued-access `(charge, charge_q8)` snapshots, excluding the
    /// outcome charges of the accesses still queued ahead of them —
    /// those are re-added as the drain discovers each outcome.
    snaps: Vec<(u64, u64)>,
}

/// Queued warming accesses per `access_batch` drain. Bounds the charge
/// error a thread can accumulate before its clock sees the outcome
/// charges: one batch of misses at most, the same slack the scalar
/// path's step granularity already allowed.
const WARM_BATCH: usize = 32;

impl<'a> FastSink<'a> {
    pub(crate) fn new(
        mem: &'a mut MemorySystem,
        state: &'a mut SamplingState,
        cpu: usize,
        base_clock: u64,
    ) -> Self {
        let clocked = mem.needs_clock();
        FastSink {
            mem,
            state,
            cpu,
            charge: 0,
            charge_q8: 0,
            base_clock,
            clocked,
            refs: Vec::with_capacity(WARM_BATCH),
            snaps: Vec::with_capacity(WARM_BATCH),
        }
    }

    /// Drains the queued warming accesses through the batched path,
    /// reconstructing each access's clock stamp and outcome charge in
    /// the scalar loop's exact order.
    fn flush(&mut self) {
        if self.refs.is_empty() {
            return;
        }
        let FastSink {
            mem,
            state,
            charge_q8,
            base_clock,
            clocked,
            refs,
            snaps,
            ..
        } = self;
        let lat = &state.lat;
        let warm_every = u64::from(state.warm_every);
        // Outcome charges of the accesses drained so far this flush:
        // access i's stamp is its snapshot plus the charges of accesses
        // 0..i — exactly what the scalar loop's running total held.
        let mut acc_q8 = 0u64;
        if *clocked {
            let (c, q) = snaps[0];
            mem.set_now(*base_clock + c + (q >> 8));
        }
        mem.access_batch(refs, |i, outcome| {
            if refs[i].kind != AccessKind::Store {
                // The detailed timer stalls loads and ifetches by
                // exactly this cost; store latency drains through the
                // store buffer and surfaces in the calibrated base.
                acc_q8 += (lat.cost_of(outcome) << 8) * warm_every;
            }
            if *clocked {
                snaps
                    .get(i + 1)
                    .map(|&(c, q)| *base_clock + c + ((q + acc_q8) >> 8))
            } else {
                None
            }
        });
        *charge_q8 += acc_q8;
        refs.clear();
        snaps.clear();
    }

    /// Cycles this step charges (at least 1, so time always advances).
    /// Drains any queued warming accesses first — their outcomes price
    /// part of the charge.
    pub(crate) fn charge(&mut self) -> u64 {
        self.flush();
        (self.charge + (self.charge_q8 >> 8)).max(1)
    }
}

impl MemSink for FastSink<'_> {
    fn instructions(&mut self, n: u64) {
        self.charge += n;
        self.state.sig.instructions(n);
    }

    fn access(&mut self, kind: AccessKind, addr: Addr) {
        self.charge_q8 += self.state.base_q8;
        self.state.sig.access(self.cpu, kind, addr);
        self.state.warm_tick += 1;
        if self.state.warm_tick >= self.state.warm_every {
            self.state.warm_tick = 0;
            // Functional warming: full state transition, statistics
            // discarded (counters recorded during fast spans never
            // enter per-unit deltas — those are captured strictly
            // inside detailed spans). The outcome prices the charge,
            // applied when the batch drains.
            self.refs.push(BatchRef {
                cpu: self.cpu as u32,
                kind,
                addr,
            });
            self.snaps.push((self.charge, self.charge_q8));
            if self.refs.len() == WARM_BATCH {
                self.flush();
            }
        }
    }
}

/// One unit of the sampled schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitRecord {
    /// Unit index within the window (0 first).
    pub unit: usize,
    /// Signature cluster the unit was assigned to.
    pub cluster: usize,
    /// Whether the unit was simulated in detail.
    pub detailed: bool,
    /// Whether the unit sat in the post-GC recovery transient (always
    /// detailed, pooled in the dedicated recovery stratum).
    pub recovery: bool,
    /// Cycle the unit started at.
    pub start: u64,
    /// Cycle the unit actually ended at (>= nominal end when a GC
    /// pause ran past the boundary).
    pub end: u64,
}

/// One cluster of the sampled schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterInfo {
    /// Units assigned to the cluster.
    pub pop: u64,
    /// Units of the cluster simulated in detail.
    pub measured: u32,
}

/// The detailed measurement of one unit's post-warming span.
#[derive(Debug, Clone)]
pub struct UnitMeasurement {
    /// Unit index within the window.
    pub unit: usize,
    /// Cluster the unit ended up in.
    pub cluster: usize,
    /// Wall (virtual) cycles of the measured span.
    pub span: u64,
    /// Counter deltas over the span (see `Snapshot::delta`).
    pub counters: Snapshot,
    /// Pipeline-report delta over the span, merged across the pset.
    pub cpi: CpiReport,
    /// Transactions completed in the span.
    pub transactions: u64,
    /// GC cycles inside the span.
    pub gc_cycles: u64,
    /// Response-time histogram delta, when the workload keeps one.
    pub response: Option<Histogram>,
    /// Memory-latency histogram delta, when enabled.
    pub mem_latency: Option<Histogram>,
}

impl UnitMeasurement {
    /// Delta of a named counter over the measured span.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).unwrap_or(0)
    }

    /// Per-Mcycle rate of a named counter over the measured span.
    pub fn rate_per_mcycle(&self, name: &str) -> f64 {
        self.counter(name) as f64 * 1e6 / self.span.max(1) as f64
    }
}

/// Snapshot of everything a unit measurement diffs.
struct UnitProbe {
    now: u64,
    counters: Snapshot,
    cpi: CpiReport,
    transactions: u64,
    gc_cycles: u64,
    response: Option<Histogram>,
    mem_latency: Option<Histogram>,
}

impl UnitProbe {
    fn capture<W: Workload>(m: &Machine<W>) -> Self {
        UnitProbe {
            now: m.time(),
            counters: m.counters(),
            cpi: m.pset_cpi(),
            transactions: m.transactions(),
            gc_cycles: m.window_gc_cycles(),
            response: m.workload().response_hist().cloned(),
            mem_latency: m.latency_hist().cloned(),
        }
    }

    fn delta(self, base: &UnitProbe, unit: usize) -> UnitMeasurement {
        UnitMeasurement {
            unit,
            cluster: 0, // assigned after clustering
            span: self.now.saturating_sub(base.now).max(1),
            counters: self.counters.delta(&base.counters),
            cpi: cpi_delta(&self.cpi, &base.cpi),
            transactions: self.transactions - base.transactions,
            gc_cycles: self.gc_cycles - base.gc_cycles,
            response: hist_delta(self.response.as_ref(), base.response.as_ref()),
            mem_latency: hist_delta(self.mem_latency.as_ref(), base.mem_latency.as_ref()),
        }
    }
}

/// Field-wise difference of two cumulative pipeline reports.
fn cpi_delta(after: &CpiReport, before: &CpiReport) -> CpiReport {
    CpiReport {
        instructions: after.instructions - before.instructions,
        loads: after.loads - before.loads,
        stores: after.stores - before.stores,
        base_cycles: after.base_cycles - before.base_cycles,
        instr_stall: after.instr_stall - before.instr_stall,
        data_stall: simcpu::DataStall {
            store_buffer: after.data_stall.store_buffer - before.data_stall.store_buffer,
            raw_hazard: after.data_stall.raw_hazard - before.data_stall.raw_hazard,
            l2_hit: after.data_stall.l2_hit - before.data_stall.l2_hit,
            cache_to_cache: after.data_stall.cache_to_cache - before.data_stall.cache_to_cache,
            memory: after.data_stall.memory - before.data_stall.memory,
        },
    }
}

/// Bucket-wise difference of two cumulative histograms.
fn hist_delta(after: Option<&Histogram>, before: Option<&Histogram>) -> Option<Histogram> {
    let after = after?;
    let mut buckets = *after.buckets();
    let mut sum = after.sum();
    if let Some(b) = before {
        for (slot, prev) in buckets.iter_mut().zip(b.buckets()) {
            *slot -= prev;
        }
        sum = sum.saturating_sub(b.sum());
    }
    let count = buckets.iter().sum();
    Some(Histogram::from_parts(count, sum, &buckets).expect("bucket diff is consistent"))
}

/// The outcome of a sampled measurement window.
#[derive(Debug, Clone)]
pub struct SampledRun {
    /// The requested window length in cycles.
    pub window_cycles: u64,
    /// Cycles the window actually covered (>= requested when the last
    /// unit's GC overshot).
    pub actual_cycles: u64,
    /// Per-reference fast-path short-stall estimate at window end (Q8):
    /// the store-buffer + RAW-hazard cycles charged on top of the
    /// outcome-weighted warming costs.
    pub base_q8: u64,
    /// Every unit of the schedule, in order.
    pub units: Vec<UnitRecord>,
    /// Cluster populations and measured counts, by cluster id.
    pub clusters: Vec<ClusterInfo>,
    /// The detailed measurements, in unit order.
    pub measurements: Vec<UnitMeasurement>,
    /// The machine's own window report: transactions, mode fractions
    /// and GC bookkeeping in here are exact; its CPI covers only the
    /// detailed cycles and is replaced by [`SampledRun::to_window_report`].
    pub raw_report: WindowReport,
}

impl SampledRun {
    /// Units simulated in detail.
    pub fn detailed_units(&self) -> usize {
        self.measurements.len()
    }

    /// The fraction of the window simulated in detail (including the
    /// warming prefixes).
    pub fn detailed_fraction(&self) -> f64 {
        let detailed: u64 = self
            .units
            .iter()
            .filter(|u| u.detailed)
            .map(|u| u.end - u.start)
            .sum();
        detailed as f64 / self.actual_cycles.max(1) as f64
    }

    /// Stratified estimate of `f` over the measured units, weighted by
    /// cluster population.
    pub fn estimate(&self, f: impl Fn(&UnitMeasurement) -> f64) -> Estimate {
        let total: u64 = self.clusters.iter().map(|c| c.pop).sum();
        let strata: Vec<Stratum> = self
            .clusters
            .iter()
            .enumerate()
            .map(|(c, info)| {
                Stratum::new(
                    info.pop as f64 / total.max(1) as f64,
                    self.measurements
                        .iter()
                        .filter(|m| m.cluster == c)
                        .map(&f)
                        .collect(),
                )
            })
            .collect();
        stratified(&strata)
    }

    /// Stratified estimate of a whole-window ratio `Σnum / Σden`,
    /// computed as the ratio of the two population-weighted per-cycle
    /// rates. The naive alternative — the stratified mean of per-unit
    /// ratios — is biased whenever the denominator's rate varies across
    /// units (a busy unit contributes more events to a full run's
    /// aggregate than a quiet one, but the per-unit ratio weights them
    /// equally); the rate ratio matches the full run's aggregate
    /// structure. The interval is a delta-method approximation that
    /// ignores the num/den covariance (conservative for positively
    /// correlated counters).
    pub fn ratio_estimate(
        &self,
        num: impl Fn(&UnitMeasurement) -> f64,
        den: impl Fn(&UnitMeasurement) -> f64,
    ) -> Estimate {
        let n = self.estimate(|m| num(m) / m.span.max(1) as f64);
        let d = self.estimate(|m| den(m) / m.span.max(1) as f64);
        if d.mean == 0.0 {
            return Estimate {
                mean: 0.0,
                ci_half: 0.0,
                ..n
            };
        }
        let mean = n.mean / d.mean;
        Estimate {
            mean,
            ci_half: (n.ci_half + mean.abs() * d.ci_half) / d.mean.abs(),
            ..n
        }
    }

    /// Estimated CPI over the window (`Σcycles / Σinstructions`, the
    /// same aggregate a full run reports).
    pub fn cpi(&self) -> Estimate {
        self.ratio_estimate(|m| m.cpi.cycles() as f64, |m| m.cpi.instructions as f64)
    }

    /// Estimated ratio of two counters (e.g. an L2 miss rate).
    pub fn counter_ratio(&self, num: &str, den: &str) -> Estimate {
        self.ratio_estimate(|m| m.counter(num) as f64, |m| m.counter(den) as f64)
    }

    /// Estimated per-Mcycle rate of a counter.
    pub fn counter_rate(&self, name: &str) -> Estimate {
        self.estimate(|m| m.rate_per_mcycle(name))
    }

    /// The measured units' histograms merged with each unit's bucket
    /// counts scaled by its cluster's population/measured ratio — the
    /// extrapolated whole-window distribution (integer arithmetic, so
    /// deterministic).
    pub fn scaled_hist(
        &self,
        select: impl Fn(&UnitMeasurement) -> Option<&Histogram>,
    ) -> Option<Histogram> {
        let mut buckets = [0u64; Histogram::BUCKETS];
        let mut sum = 0u64;
        let mut any = false;
        for m in &self.measurements {
            let Some(h) = select(m) else { continue };
            any = true;
            let info = self.clusters[m.cluster];
            let (num, den) = (info.pop, u64::from(info.measured).max(1));
            for (slot, b) in buckets.iter_mut().zip(h.buckets()) {
                *slot += b * num / den;
            }
            sum += h.sum() * num / den;
        }
        if !any {
            return None;
        }
        let count = buckets.iter().sum();
        Some(Histogram::from_parts(count, sum, &buckets).expect("scaled buckets are consistent"))
    }

    /// Extrapolated response-time distribution, when the workload
    /// keeps one.
    pub fn response_hist(&self) -> Option<Histogram> {
        self.scaled_hist(|m| m.response.as_ref())
    }

    /// A synthetic whole-window [`CpiReport`]: every field is the
    /// stratified per-cycle rate scaled to the window. Transactions,
    /// modes and GC come from the exact bookkeeping.
    pub fn to_window_report(&self) -> WindowReport {
        let scale = |f: &dyn Fn(&UnitMeasurement) -> u64| -> u64 {
            let rate = self.estimate(|m| f(m) as f64 / m.span.max(1) as f64);
            (rate.mean * self.actual_cycles as f64).round().max(0.0) as u64
        };
        let cpi = CpiReport {
            instructions: scale(&|m| m.cpi.instructions),
            loads: scale(&|m| m.cpi.loads),
            stores: scale(&|m| m.cpi.stores),
            base_cycles: scale(&|m| m.cpi.base_cycles),
            instr_stall: scale(&|m| m.cpi.instr_stall),
            data_stall: simcpu::DataStall {
                store_buffer: scale(&|m| m.cpi.data_stall.store_buffer),
                raw_hazard: scale(&|m| m.cpi.data_stall.raw_hazard),
                l2_hit: scale(&|m| m.cpi.data_stall.l2_hit),
                cache_to_cache: scale(&|m| m.cpi.data_stall.cache_to_cache),
                memory: scale(&|m| m.cpi.data_stall.memory),
            },
        };
        let c2c = self.counter_ratio("mem.c2c.percpu_total", "mem.l2_miss.percpu_total");
        let snoop = self.ratio_estimate(
            |m| m.counter("bus.snoops_filtered") as f64,
            |m| (m.counter("bus.snoops_sent") + m.counter("bus.snoops_filtered")) as f64,
        );
        WindowReport {
            cpi,
            c2c_ratio: c2c.mean,
            snoop_filter_rate: snoop.mean,
            ..self.raw_report.clone()
        }
    }

    /// The unit schedule as run-observatory timeline events for job
    /// `(run, id)`: one span per unit, named by stratum —
    /// `unit.recovery` (post-GC transient, detailed), `unit.detailed`
    /// (measured steady state) or `unit.fast` (functional
    /// fast-forward) — so the Chrome-trace view shows exactly which
    /// cycles the extrapolation rests on.
    pub fn event_records(&self, run: usize, id: usize) -> Vec<EventRecord> {
        self.units
            .iter()
            .map(|u| EventRecord {
                run,
                id,
                name: if u.recovery {
                    "unit.recovery".into()
                } else if u.detailed {
                    "unit.detailed".into()
                } else {
                    "unit.fast".into()
                },
                start: u.start,
                end: u.end,
            })
            .collect()
    }

    /// The unit schedule as RunLog records for job `(run, id)`.
    pub fn sample_units(&self, run: usize, id: usize) -> Vec<SampleUnitRecord> {
        let total: u64 = self.clusters.iter().map(|c| c.pop).sum();
        self.units
            .iter()
            .map(|u| SampleUnitRecord {
                run,
                id,
                unit: u.unit,
                cluster: u.cluster,
                start: u.start,
                end: u.end,
                detailed: u.detailed,
                weight_ppm: self.clusters[u.cluster].pop * 1_000_000 / total.max(1),
            })
            .collect()
    }
}

/// Derives the fast path's per-reference *short*-stall estimate (Q8)
/// from a detailed span's pipeline report: the store-buffer and
/// RAW-hazard cycles — the only stall components the per-outcome
/// warming charges don't reproduce — averaged over the references.
fn short_stall_q8(cpi: &CpiReport, refs: u64) -> u64 {
    let short = cpi.data_stall.store_buffer + cpi.data_stall.raw_hazard;
    (short << 8) / refs.max(1)
}

/// Runs one `warmup + window` measurement in sampled mode and returns
/// the per-unit measurements with their extrapolation context.
///
/// The machine must be freshly built (the warm-up starts at time 0,
/// matching `measure`'s contract). Consumes no RNG beyond what the
/// workload itself draws, so a sampled run is bit-deterministic.
pub fn measure_sampled<W: Workload>(
    m: &mut Machine<W>,
    warmup: u64,
    window: u64,
    cfg: &SamplingConfig,
) -> SampledRun {
    // 1. Detailed calibration prefix: learn the per-reference short
    // stall (the outcome-weighted warming charges cover the rest).
    let calib_end = cfg.calibration_cycles.min(warmup).max(1);
    let c0 = (m.pset_cpi(), m.counters());
    m.run_until(calib_end);
    let c1 = (m.pset_cpi(), m.counters());
    let d = c1.1.delta(&c0.1);
    let refs = d.get("mem.load.accesses").unwrap_or(0)
        + d.get("mem.store.accesses").unwrap_or(0)
        + d.get("mem.ifetch.accesses").unwrap_or(0);
    let base_q8 = short_stall_q8(&cpi_delta(&c1.0, &c0.0), refs);
    m.begin_sampling(cfg.warm_every, base_q8);

    // 2. Functionally fast-forward the rest of the warm-up, closing
    // with a full-rate warming ramp so the first (always detailed)
    // unit starts from converged cache state.
    m.set_fast_forward(true);
    m.run_until(warmup.saturating_sub(cfg.unit_cycles).max(calib_end));
    m.set_warm_every(1);
    m.run_until(warmup);
    m.sync_memory_clock();

    // 3. The measurement window, unit by unit.
    m.set_fast_forward(false);
    m.begin_measurement();
    let start = m.time();
    let end_of_window = start + window;
    let warm = cfg.warm_cycles.min(cfg.unit_cycles / 2);
    let total_units = (window / cfg.unit_cycles).max(1) as usize;
    let stride = (total_units / cfg.min_units.max(1)).max(1);
    // A fixed `u % stride == 0` schedule aliases: middleware behavior
    // is periodic (GC cycles, inventory rotation, timer-driven phases)
    // and whenever a phase period divides into the stride's cycle
    // period the strided units land at the *same* phase offset every
    // time — always the burst's peak, or never the burst at all —
    // and the stratum mean inherits the full phase-offset bias.
    // Jittering the measured slot within each stride block by a hash
    // of the block index turns the schedule into stratified random
    // sampling while staying bit-deterministic and consuming nothing
    // from the workload's RNG stream.
    let strided_at = |u: usize| {
        let block = (u / stride) as u64;
        let slot = prng::SimRng::seed_from_u64(block).next_u64() % stride as u64;
        u % stride == slot as usize
    };

    let mut leaders = Leaders::new(cfg.threshold);
    let mut units: Vec<UnitRecord> = Vec::with_capacity(total_units);
    let mut measurements: Vec<UnitMeasurement> = Vec::new();
    let mut last_cluster = usize::MAX;
    let mut gc_prev = 0u64;
    let mut tx_prev = m.transactions();
    let mut pressure_prev = m.workload().gc_pressure();
    let mut gc_count_prev = m.gc_count();
    // Completed units since the unit a collection finished in; starts
    // saturated so the window's head is not mistaken for a transient.
    let mut since_gc = usize::MAX;
    let mut recovery_slot: Option<usize> = None;
    let mut prev_detailed = false;
    m.drain_signature();

    let mut now = start;
    let mut u = 0usize;
    while now < end_of_window {
        let unit_start = now;
        let unit_end = (unit_start + cfg.unit_cycles).min(end_of_window);
        // Decide detail at unit *start*, predicting the cluster from
        // the previous unit: the first unit always measures, a cluster
        // that has population but no measurement claims detail
        // ("hungry"), and a stratified stride keeps coverage spread
        // across the window up to the configured ceiling.
        let hungry = last_cluster != usize::MAX
            && leaders.hungry(last_cluster)
            && measurements.len() < cfg.max_units + cfg.min_units;
        let strided = strided_at(u) && measurements.len() < cfg.max_units;
        // A GC burst is a one-unit event a reactive schedule only
        // notices after it ran fast — and its compulsory sweep misses
        // are a double-digit share of the window's total, so losing it
        // biases every miss-rate estimate low. Predict it instead:
        // force detail while the eden fill extrapolated over the next
        // unit-and-a-half crosses capacity (the condition stays true
        // until the collection actually runs and resets the pressure).
        let pressure = m.workload().gc_pressure();
        let gc_soon = pressure + 1.5 * (pressure - pressure_prev).max(0.0) >= 1.0;
        pressure_prev = pressure;
        // The units after a collection are the post-GC cold-cache
        // transient: the sweep evicted the mutators' working set, so
        // their miss rates decay from far above steady state while
        // their behavior signatures look ordinary. Force them into
        // detail and pool them in a dedicated stratum (below) so the
        // transient is weighted by its true population instead of
        // leaking into a steady-state cluster's mean.
        let recovering = since_gc < cfg.recovery_units;
        let detailed = u == 0 || hungry || strided || gc_soon || recovering;

        let meas = if detailed {
            m.set_fast_forward(false);
            // Warming prefix: detailed execution, excluded from the
            // measurement so post-fast-forward cache state recovers
            // before statistics count. When the previous unit already
            // ran in detail the state is exact and the prefix would
            // only discard measured span — skip it. A GC-forced unit
            // shortens the prefix: the burst must land in the measured
            // span, and the collector's sweep misses are compulsory —
            // nearly independent of how warm the caches are.
            let warm = if prev_detailed {
                0
            } else if gc_soon {
                warm / 4
            } else {
                warm
            };
            m.run_until((unit_start + warm).min(unit_end.saturating_sub(1)));
            let base = UnitProbe::capture(m);
            m.run_until(unit_end);
            Some(UnitProbe::capture(m).delta(&base, u))
        } else {
            m.set_fast_forward(true);
            // Pre-warming ramp: when the next unit is a scheduled
            // detailed one, warm every reference through this unit so
            // the cache state it measures from has converged — the
            // subsampled stream under-warms a large L2 and its extra
            // cold misses land directly in the measured span.
            let next_strided = strided_at(u + 1) && measurements.len() < cfg.max_units;
            m.set_warm_every(if next_strided { 1 } else { cfg.warm_every });
            m.run_until(unit_end);
            None
        };
        m.sync_memory_clock();
        let unit_actual_end = m.time().max(unit_end);

        // Fingerprint and cluster the unit (both paths feed the
        // signature collector).
        let gc_now = m.window_gc_cycles();
        let tx_now = m.transactions();
        let counts = m.drain_signature();
        let sig = Signature::from_counts(
            &counts,
            unit_actual_end - unit_start,
            gc_now - gc_prev,
            tx_now - tx_prev,
        );
        gc_prev = gc_now;
        tx_prev = tx_now;
        let cluster = if recovering {
            leaders.assign_special(&mut recovery_slot, &sig)
        } else {
            leaders.assign(&sig)
        };
        units.push(UnitRecord {
            unit: u,
            cluster,
            detailed,
            recovery: recovering,
            start: unit_start,
            end: unit_actual_end,
        });
        if let Some(mut meas) = meas {
            meas.cluster = cluster;
            leaders.measured[cluster] += 1;
            // Re-calibrate the fast clock from the freshest detailed
            // span (rounded EMA keeps it integer and deterministic).
            let refs = meas.counter("mem.load.accesses")
                + meas.counter("mem.store.accesses")
                + meas.counter("mem.ifetch.accesses");
            if refs > 0 {
                let fresh = short_stall_q8(&meas.cpi, refs);
                m.set_fast_base_q8((m.fast_base_q8() + fresh) / 2);
            }
            measurements.push(meas);
        }
        last_cluster = cluster;
        let gc_count_now = m.gc_count();
        since_gc = if gc_count_now != gc_count_prev {
            0
        } else {
            since_gc.saturating_add(1)
        };
        gc_count_prev = gc_count_now;
        prev_detailed = detailed;
        now = unit_actual_end;
        u += 1;
    }

    m.set_fast_forward(false);
    let base_q8 = m.fast_base_q8();
    m.end_sampling();

    let raw_report = m.window_report();
    SampledRun {
        window_cycles: window,
        actual_cycles: now - start,
        base_q8,
        clusters: leaders
            .pop
            .iter()
            .zip(&leaders.measured)
            .map(|(&pop, &measured)| ClusterInfo { pop, measured })
            .collect(),
        units,
        measurements,
        raw_report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{jbb_machine, measure_in, Effort};

    #[test]
    fn sampled_quick_run_is_sane() {
        let effort = Effort::Quick;
        let mode = effort.sampled_mode();
        let mut m = jbb_machine(2, 4, 1, effort);
        let (report, sampled) = measure_in(&mut m, effort, &mode);
        let s = sampled.expect("sampled mode returns the run");

        assert!(!s.units.is_empty());
        assert!(s.detailed_units() >= 1);
        assert!(
            s.detailed_fraction() < 0.5,
            "fast-forward should dominate: detailed fraction {}",
            s.detailed_fraction()
        );
        assert!(report.transactions > 0, "transactions are exact");
        let cpi = s.cpi();
        assert!(cpi.mean > 0.5 && cpi.mean < 20.0, "cpi {}", cpi.mean);
        assert!(cpi.ci_half.is_finite());
        // The synthetic report is internally consistent.
        assert!(report.cpi.instructions > 0);
        assert_eq!(
            s.units.iter().filter(|u| u.detailed).count(),
            s.detailed_units()
        );
        // Unit schedule serializes with sane weights.
        let recs = s.sample_units(0, 0);
        assert_eq!(recs.len(), s.units.len());
        assert!(recs.iter().all(|r| r.weight_ppm <= 1_000_000));
        assert!(recs.iter().all(|r| r.end > r.start));
    }

    #[test]
    fn sampled_runs_are_bit_deterministic() {
        let effort = Effort::Quick;
        let mode = effort.sampled_mode();
        let run = || {
            let mut m = jbb_machine(1, 2, 7, effort);
            let (report, s) = measure_in(&mut m, effort, &mode);
            (report, s.unwrap())
        };
        let (r1, s1) = run();
        let (r2, s2) = run();
        assert_eq!(r1, r2);
        assert_eq!(s1.units, s2.units);
        assert_eq!(s1.base_q8, s2.base_q8);
        assert_eq!(s1.cpi().mean.to_bits(), s2.cpi().mean.to_bits());
    }

    #[test]
    fn signature_features_stay_in_unit_range() {
        let c = SigCounts {
            instrs: 1000,
            loads: 300,
            stores: 100,
            ifetches: 200,
            reuse_hits: 400,
            shared_hits: 50,
        };
        let s = Signature::from_counts(&c, 1_000_000, 250_000, 40);
        for (i, f) in s.0.iter().enumerate() {
            assert!((0.0..=1.0).contains(f), "feature {i} = {f}");
        }
        assert_eq!(s.distance(&s), 0.0);
    }

    #[test]
    fn empty_unit_signature_is_all_zero_but_finite() {
        let s = Signature::from_counts(&SigCounts::default(), 1_000_000, 0, 0);
        assert!(s.0.iter().all(|f| f.is_finite()));
    }

    #[test]
    fn collector_sees_reuse_and_sharing() {
        let mut sig = SignatureCollector::new();
        let a = Addr(0x1000);
        sig.access(0, AccessKind::Load, a);
        sig.access(0, AccessKind::Load, a); // same cpu reuse
        sig.access(1, AccessKind::Store, a); // cross-cpu reuse
        let c = sig.drain();
        assert_eq!(c.loads, 2);
        assert_eq!(c.stores, 1);
        assert_eq!(c.reuse_hits, 2);
        assert_eq!(c.shared_hits, 1);
        // Counters drained; the sketch persists.
        assert_eq!(sig.drain().loads, 0);
        sig.access(2, AccessKind::Load, a);
        assert_eq!(sig.drain().shared_hits, 1, "sketch survives the drain");
    }

    #[test]
    fn leader_clustering_is_deterministic_and_threshold_bound() {
        let mut l = Leaders::new(0.2);
        let base = Signature([0.5; SIG_DIMS]);
        let near = Signature([0.52, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5]);
        let far = Signature([0.5, 0.5, 0.5, 0.5, 0.5, 1.0, 0.5]);
        assert_eq!(l.assign(&base), 0);
        assert_eq!(l.assign(&near), 0);
        assert_eq!(l.assign(&far), 1, "a GC-phase unit founds its own cluster");
        assert_eq!(l.assign(&base), 0);
        assert_eq!(l.pop, vec![3, 1]);
        assert!(l.hungry(0) && l.hungry(1));
    }

    #[test]
    fn short_stall_covers_only_buffer_and_hazard_cycles() {
        let mut cpi = CpiReport::default();
        cpi.data_stall.store_buffer = 400;
        cpi.data_stall.raw_hazard = 200;
        cpi.data_stall.memory = 10_000; // covered by outcome charges
                                        // 600 short-stall cycles / 200 refs = 3 cycles per ref.
        assert_eq!(short_stall_q8(&cpi, 200), 3 << 8);
        assert_eq!(short_stall_q8(&cpi, 0), 600 << 8, "guarded div");
        assert_eq!(short_stall_q8(&CpiReport::default(), 100), 0);
    }

    #[test]
    fn hist_delta_subtracts_bucketwise() {
        let mut before = Histogram::new();
        before.record(5);
        let mut after = before.clone();
        after.record(5);
        after.record(900);
        let d = hist_delta(Some(&after), Some(&before)).unwrap();
        assert_eq!(d.count(), 2);
        assert_eq!(d.sum(), 905);
        assert_eq!(hist_delta(None, None), None);
    }
}
