//! The unified observation seam: [`SimObserver`].
//!
//! The engine emits a small set of events — every memory reference (with
//! its coherence outcome), every completed transaction, every GC interval
//! — and anything that wants to *watch* a run attaches an observer
//! instead of growing the machine a bespoke method. The Figure 10
//! timeline, the Figure 12/13 cache-size sweeps and the Figure 14/15
//! communication footprints are all observers; future tracing and
//! sampling hooks attach the same way.
//!
//! Observers are deliberately downstream of [`memsys::MemSink`]: a sink
//! is *in* the reference path (the workload pushes references through it
//! into the memory system and the CPU timer), while an observer stands
//! beside the path and sees each reference together with what the memory
//! system said about it.

use std::any::Any;
use std::marker::PhantomData;

use memsys::{AccessKind, AccessOutcome, Addr, CacheSweep, LineStats};
use probes::runlog::{EventRecord, IntervalRecord};
use probes::Snapshot;
use simcpu::StallCharge;

// The source tag lives with the trace machinery in `memsys` (captured
// streams carry it); it is re-exported here because the observer seam is
// where the engine applies it.
pub use memsys::AccessSource;

/// One observed memory reference.
#[derive(Debug, Clone, Copy)]
pub struct AccessEvent<'a> {
    /// Processor that issued the reference.
    pub cpu: usize,
    /// Reference kind.
    pub kind: AccessKind,
    /// Referenced address.
    pub addr: Addr,
    /// What the memory system did with it.
    pub outcome: &'a AccessOutcome,
    /// The issuing processor's virtual time in cycles.
    pub now: u64,
    /// Which part of the simulated system issued it.
    pub source: AccessSource,
    /// The stall cycles the CPU timer charged for this access (zero for
    /// references outside any timer, e.g. kernel clock ticks).
    pub charge: StallCharge,
}

/// A passive observer of a machine's execution.
///
/// All methods default to no-ops so an observer implements only what it
/// watches. The `Any` supertrait lets the machine hand back a typed
/// reference via [`ObserverHandle`] after the run.
pub trait SimObserver: Any {
    /// Called for every memory reference, after the memory system
    /// resolved it.
    fn on_access(&mut self, _event: &AccessEvent<'_>) {}

    /// Called when `cpu` retires `n` instructions that make no memory
    /// reference, tagged with the source of the executing step.
    fn on_instructions(&mut self, _cpu: usize, _n: u64, _source: AccessSource) {}

    /// Called when a stop-the-world collection finishes, with its
    /// `[start, end)` interval in cycles.
    fn on_gc_interval(&mut self, _start: u64, _end: u64) {}

    /// Called when a transaction completes on `cpu` at time `now`.
    fn on_tx_done(&mut self, _cpu: usize, _now: u64) {}

    /// Called by `begin_measurement` with the current virtual time:
    /// discard warm-up observations.
    fn on_window_reset(&mut self, _now: u64) {}

    /// The simulated-cycle interval at which this observer wants
    /// whole-machine counter snapshots delivered via
    /// [`SimObserver::on_counter_sample`]. `None` (the default) means
    /// the kernel never samples for this observer.
    fn interval_cycles(&self) -> Option<u64> {
        None
    }

    /// Delivers the cumulative whole-machine counter snapshot at
    /// virtual time `now`. The kernel calls this once when the observer
    /// attaches / the window resets (the baseline) and then whenever
    /// virtual time crosses a sampling boundary.
    fn on_counter_sample(&mut self, _now: u64, _counters: &Snapshot) {}
}

/// A typed handle to an attached observer, returned by
/// `Machine::attach_observer` and redeemed after the run.
pub struct ObserverHandle<T> {
    pub(crate) index: usize,
    pub(crate) _marker: PhantomData<fn() -> T>,
}

// Derived impls would bound `T`; handles are plain indices.
impl<T> Clone for ObserverHandle<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for ObserverHandle<T> {}

/// The machine's collection of attached observers.
#[derive(Default)]
pub struct ObserverSet {
    observers: Vec<Box<dyn SimObserver>>,
}

impl ObserverSet {
    /// An empty set.
    pub fn new() -> Self {
        ObserverSet::default()
    }

    /// Whether any observer is attached (lets the hot path skip event
    /// construction entirely).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.observers.is_empty()
    }

    /// Attaches an observer, returning its typed handle.
    pub fn attach<T: SimObserver>(&mut self, observer: T) -> ObserverHandle<T> {
        let index = self.observers.len();
        self.observers.push(Box::new(observer));
        ObserverHandle {
            index,
            _marker: PhantomData,
        }
    }

    /// The observer behind `handle`.
    ///
    /// # Panics
    ///
    /// Panics if the handle belongs to a different machine.
    pub fn get<T: SimObserver>(&self, handle: ObserverHandle<T>) -> &T {
        let obs: &dyn Any = &*self.observers[handle.index];
        obs.downcast_ref::<T>()
            .expect("observer handle type mismatch")
    }

    /// Mutable access to the observer behind `handle`.
    ///
    /// # Panics
    ///
    /// Panics if the handle belongs to a different machine.
    pub fn get_mut<T: SimObserver>(&mut self, handle: ObserverHandle<T>) -> &mut T {
        let obs: &mut dyn Any = &mut *self.observers[handle.index];
        obs.downcast_mut::<T>()
            .expect("observer handle type mismatch")
    }

    #[inline]
    pub(crate) fn access(&mut self, event: &AccessEvent<'_>) {
        for o in &mut self.observers {
            o.on_access(event);
        }
    }

    #[inline]
    pub(crate) fn instructions(&mut self, cpu: usize, n: u64, source: AccessSource) {
        for o in &mut self.observers {
            o.on_instructions(cpu, n, source);
        }
    }

    pub(crate) fn gc_interval(&mut self, start: u64, end: u64) {
        for o in &mut self.observers {
            o.on_gc_interval(start, end);
        }
    }

    #[inline]
    pub(crate) fn tx_done(&mut self, cpu: usize, now: u64) {
        for o in &mut self.observers {
            o.on_tx_done(cpu, now);
        }
    }

    pub(crate) fn window_reset(&mut self, now: u64) {
        for o in &mut self.observers {
            o.on_window_reset(now);
        }
    }

    /// Smallest sampling interval any attached observer asked for.
    pub(crate) fn min_interval(&self) -> Option<u64> {
        self.observers
            .iter()
            .filter_map(|o| o.interval_cycles())
            .min()
    }

    pub(crate) fn counter_sample(&mut self, now: u64, counters: &Snapshot) {
        for o in &mut self.observers {
            if o.interval_cycles().is_some() {
                o.on_counter_sample(now, counters);
            }
        }
    }
}

/// One emitted interval of an [`IntervalSampler`]: counter deltas over
/// `[start, end)` cycles with a GC-overlap flag.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalSample {
    /// Sequence number (0 first).
    pub seq: usize,
    /// Interval start in cycles.
    pub start: u64,
    /// Interval end in cycles (exclusive).
    pub end: u64,
    /// Whether a stop-the-world collection overlapped the interval.
    pub gc: bool,
    /// Counter deltas over the interval (`Ratio` counters carry the
    /// end-of-interval value).
    pub counters: Snapshot,
}

impl IntervalSample {
    /// Interval width in cycles (always positive).
    pub fn width(&self) -> u64 {
        self.end - self.start
    }

    /// One counter's per-million-cycle rate over the interval.
    pub fn rate_per_mcycle(&self, name: &str) -> f64 {
        self.counters.get(name).unwrap_or(0) as f64 * 1e6 / self.width() as f64
    }
}

/// Samples the *entire* registered counter tree (`mem.*`, `bus.*`,
/// `cpustat.*`, `acct.*`) every `width` simulated cycles and records
/// per-interval deltas with GC-active annotation — the `mpstat -p N`
/// of the simulator, generalizing the one-metric timeline observer the
/// Figure 10 driver used to carry.
///
/// The kernel drives the sampling: it polls [`SimObserver::interval_cycles`],
/// builds one whole-machine snapshot whenever virtual time crosses a
/// boundary, and delivers it through [`SimObserver::on_counter_sample`].
/// Because a single step (a long GC pause, a sleep) can jump virtual
/// time past a boundary, emitted intervals are *at least* `width` wide
/// and carry their actual `[start, end)` — consumers normalize by
/// [`IntervalSample::width`], never by the nominal width.
#[derive(Debug, Clone, Default)]
pub struct IntervalSampler {
    width: u64,
    last: Option<(u64, Snapshot)>,
    samples: Vec<IntervalSample>,
    gc_intervals: Vec<(u64, u64)>,
}

impl IntervalSampler {
    /// Creates a sampler with the given nominal interval width in
    /// cycles.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: u64) -> Self {
        assert!(width > 0, "sampling interval must be positive");
        IntervalSampler {
            width,
            last: None,
            samples: Vec::new(),
            gc_intervals: Vec::new(),
        }
    }

    /// The nominal interval width in cycles.
    pub fn width(&self) -> u64 {
        self.width
    }

    /// The emitted intervals, in time order.
    pub fn samples(&self) -> &[IntervalSample] {
        &self.samples
    }

    /// Converts the series into RunLog `interval` records for job
    /// `(run, id)`.
    pub fn to_records(&self, run: usize, id: usize) -> Vec<IntervalRecord> {
        self.samples
            .iter()
            .map(|s| IntervalRecord {
                run,
                id,
                seq: s.seq,
                start: s.start,
                end: s.end,
                gc: s.gc,
                counters: s.counters.clone(),
            })
            .collect()
    }
}

impl SimObserver for IntervalSampler {
    fn interval_cycles(&self) -> Option<u64> {
        Some(self.width)
    }

    fn on_counter_sample(&mut self, now: u64, counters: &Snapshot) {
        match &mut self.last {
            None => self.last = Some((now, counters.clone())),
            Some((start, prev)) => {
                if now <= *start {
                    // A same-instant re-baseline (attach followed by
                    // an immediate boundary): refresh, emit nothing.
                    *prev = counters.clone();
                    return;
                }
                let delta = counters.delta(prev);
                let gc = self
                    .gc_intervals
                    .iter()
                    .any(|&(s, e)| s < now && e > *start);
                self.samples.push(IntervalSample {
                    seq: self.samples.len(),
                    start: *start,
                    end: now,
                    gc,
                    counters: delta,
                });
                *start = now;
                *prev = counters.clone();
            }
        }
    }

    fn on_gc_interval(&mut self, start: u64, end: u64) {
        self.gc_intervals.push((start, end));
    }

    fn on_window_reset(&mut self, _now: u64) {
        self.samples.clear();
        self.gc_intervals.clear();
        self.last = None;
    }
}

/// Feeds every *benchmark* reference into banks of caches of varying
/// capacity in a single pass (Figures 12/13). Kernel-tick references are
/// excluded, as the paper filters its traces to the benchmark's
/// processors (Section 3.3).
#[derive(Debug, Clone)]
pub struct SweepObserver {
    isweep: CacheSweep,
    dsweep: CacheSweep,
}

impl SweepObserver {
    /// Creates the observer from an instruction and a data sweep.
    pub fn new(isweep: CacheSweep, dsweep: CacheSweep) -> Self {
        SweepObserver { isweep, dsweep }
    }

    /// Both sweeps at the paper's capacity axis.
    pub fn paper() -> Self {
        SweepObserver::new(CacheSweep::paper(), CacheSweep::paper())
    }

    /// The instruction-cache sweep.
    pub fn isweep(&self) -> &CacheSweep {
        &self.isweep
    }

    /// The data-cache sweep.
    pub fn dsweep(&self) -> &CacheSweep {
        &self.dsweep
    }
}

impl SimObserver for SweepObserver {
    fn on_access(&mut self, event: &AccessEvent<'_>) {
        if event.source == AccessSource::KernelTick {
            return;
        }
        if event.kind.is_data() {
            self.dsweep.access(event.addr);
        } else {
            self.isweep.access(event.addr);
        }
    }

    fn on_window_reset(&mut self, _now: u64) {
        self.isweep.reset_stats();
        self.dsweep.reset_stats();
    }
}

/// Tracks per-line communication (Figures 14/15): which lines were
/// touched and which supplied cache-to-cache transfers.
#[derive(Debug, Clone, Default)]
pub struct LineStatsObserver {
    stats: LineStats,
}

impl LineStatsObserver {
    /// An empty tracker.
    pub fn new() -> Self {
        LineStatsObserver::default()
    }

    /// The accumulated per-line statistics.
    pub fn stats(&self) -> &LineStats {
        &self.stats
    }
}

impl SimObserver for LineStatsObserver {
    fn on_access(&mut self, event: &AccessEvent<'_>) {
        let line = event.addr.line();
        self.stats.record_touch(line);
        if event.outcome.c2c {
            self.stats.record_c2c(line);
        }
    }

    fn on_window_reset(&mut self, _now: u64) {
        self.stats.reset();
    }
}

/// Collects the run observatory's sim-time events — GC pauses as
/// `gc.pause` spans and measurement-window resets as `window.reset`
/// instants — for the Chrome-trace timeline. The collector stands on
/// the same seams the interval sampler does, so attaching it changes
/// nothing on the access path, and [`TimelineCollector::to_records`]
/// is called on the worker thread after the job body finishes, off the
/// input-order merge (the bit-identity discipline of the RunLog).
///
/// Unlike the statistics observers, a window reset does *not* discard
/// what came before it: the reset itself is an event worth seeing on
/// the timeline (warm-up GC behavior is part of the story the paper's
/// Figure 10 tells), so the collector keeps the full history and marks
/// the reset with an instant.
#[derive(Debug, Clone, Default)]
pub struct TimelineCollector {
    gc_pauses: Vec<(u64, u64)>,
    window_resets: Vec<u64>,
}

impl TimelineCollector {
    /// An empty collector.
    pub fn new() -> Self {
        TimelineCollector::default()
    }

    /// The collected GC pauses, `[start, end)` in cycles.
    pub fn gc_pauses(&self) -> &[(u64, u64)] {
        &self.gc_pauses
    }

    /// The collected window-reset instants, in cycles.
    pub fn window_resets(&self) -> &[u64] {
        &self.window_resets
    }

    /// Converts the collected events into RunLog `event` records for
    /// job `(run, id)`.
    pub fn to_records(&self, run: usize, id: usize) -> Vec<EventRecord> {
        let mut out = Vec::with_capacity(self.gc_pauses.len() + self.window_resets.len());
        out.extend(self.gc_pauses.iter().map(|&(start, end)| EventRecord {
            run,
            id,
            name: "gc.pause".into(),
            start,
            end,
        }));
        out.extend(self.window_resets.iter().map(|&t| EventRecord {
            run,
            id,
            name: "window.reset".into(),
            start: t,
            end: t,
        }));
        out
    }
}

impl SimObserver for TimelineCollector {
    fn on_gc_interval(&mut self, start: u64, end: u64) {
        self.gc_pauses.push((start, end));
    }

    fn on_window_reset(&mut self, now: u64) {
        self.window_resets.push(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsys::HitLevel;

    fn c2c_outcome() -> AccessOutcome {
        AccessOutcome {
            level: HitLevel::CacheToCache,
            c2c: true,
            writeback: false,
            mem_cycles: None,
        }
    }

    use probes::registry::{CounterDesc, CounterKind, CounterSet};

    struct Cb(u64);
    impl CounterSet for Cb {
        fn descriptors(&self) -> &'static [CounterDesc] {
            const D: [CounterDesc; 1] = [CounterDesc::new("bus.snoop_cb", CounterKind::Count)];
            &D
        }
        fn values(&self, out: &mut Vec<u64>) {
            let Cb(v) = self;
            out.push(*v);
        }
    }

    #[test]
    fn sampler_emits_deltas_and_marks_gc() {
        let mut s = IntervalSampler::new(100);
        assert_eq!(s.interval_cycles(), Some(100));
        // Baseline at t=0 with cumulative 5, then boundary deliveries.
        s.on_counter_sample(0, &Snapshot::of(&Cb(5)));
        s.on_counter_sample(100, &Snapshot::of(&Cb(25)));
        s.on_gc_interval(150, 180);
        s.on_counter_sample(210, &Snapshot::of(&Cb(26)));
        s.on_counter_sample(300, &Snapshot::of(&Cb(46)));

        let tl = s.samples();
        assert_eq!(tl.len(), 3);
        assert_eq!(tl[0].counters.get("bus.snoop_cb"), Some(20));
        assert_eq!((tl[0].start, tl[0].end), (0, 100));
        assert!(!tl[0].gc, "GC happened after this interval");
        // The long step past the boundary stretched the interval.
        assert_eq!((tl[1].start, tl[1].end), (100, 210));
        assert!(tl[1].gc, "GC [150,180) overlaps [100,210)");
        assert_eq!(tl[1].counters.get("bus.snoop_cb"), Some(1));
        assert!(!tl[2].gc);
        assert_eq!(tl[2].seq, 2);
        assert!((tl[2].rate_per_mcycle("bus.snoop_cb") - 20.0 * 1e6 / 90.0).abs() < 1e-6);

        // Records carry the series verbatim.
        let recs = s.to_records(3, 7);
        assert_eq!(recs.len(), 3);
        assert_eq!((recs[1].run, recs[1].id, recs[1].seq), (3, 7, 1));
        assert!(recs[1].gc);

        // A window reset discards everything, including the baseline.
        s.on_window_reset(300);
        assert!(s.samples().is_empty());
        s.on_counter_sample(400, &Snapshot::of(&Cb(50)));
        assert!(
            s.samples().is_empty(),
            "first post-reset sample is the baseline"
        );
    }

    #[test]
    fn sweep_observer_filters_kernel_ticks() {
        let mut s = SweepObserver::new(
            CacheSweep::new(&[1 << 16]).unwrap(),
            CacheSweep::new(&[1 << 16]).unwrap(),
        );
        let o = AccessOutcome {
            level: HitLevel::Memory,
            c2c: false,
            writeback: false,
            mem_cycles: None,
        };
        let mk = |kind, source| AccessEvent {
            cpu: 0,
            kind,
            addr: Addr(0x40),
            outcome: &o,
            now: 0,
            source,
            charge: StallCharge::default(),
        };
        s.on_access(&mk(AccessKind::Load, AccessSource::Workload));
        s.on_access(&mk(AccessKind::Ifetch, AccessSource::Collector));
        s.on_access(&mk(AccessKind::Store, AccessSource::KernelTick));
        assert_eq!(s.dsweep().results()[0].1.accesses, 1, "tick excluded");
        assert_eq!(s.isweep().results()[0].1.accesses, 1);
    }

    #[test]
    fn observer_set_round_trips_typed_handles() {
        let mut set = ObserverSet::new();
        let h = set.attach(IntervalSampler::new(10));
        assert_eq!(set.min_interval(), Some(10));
        set.counter_sample(0, &Snapshot::of(&Cb(0)));
        set.counter_sample(10, &Snapshot::of(&Cb(4)));
        assert_eq!(set.get(h).samples().len(), 1);
        assert_eq!(
            set.get(h).samples()[0].counters.get("bus.snoop_cb"),
            Some(4)
        );
        set.window_reset(10);
        assert!(set.get(h).samples().is_empty());
    }

    #[test]
    fn timeline_collector_keeps_history_across_resets() {
        let mut tc = TimelineCollector::new();
        tc.on_gc_interval(100, 400);
        tc.on_window_reset(500);
        tc.on_gc_interval(900, 1200);
        assert_eq!(tc.gc_pauses(), &[(100, 400), (900, 1200)]);
        assert_eq!(tc.window_resets(), &[500]);

        let recs = tc.to_records(2, 3);
        assert_eq!(recs.len(), 3);
        assert!(recs
            .iter()
            .all(|r| (r.run, r.id) == (2, 3) && r.end >= r.start));
        let reset = recs.iter().find(|r| r.name == "window.reset").unwrap();
        assert_eq!((reset.start, reset.end), (500, 500), "instant event");
        assert_eq!(
            recs.iter().filter(|r| r.name == "gc.pause").count(),
            2,
            "warm-up GC survives the reset"
        );
    }

    #[test]
    fn line_stats_observer_tracks_touch_and_c2c() {
        let mut ls = LineStatsObserver::new();
        let hit = AccessOutcome {
            level: HitLevel::L1,
            c2c: false,
            writeback: false,
            mem_cycles: None,
        };
        let c2c = c2c_outcome();
        let mk = |addr, outcome| AccessEvent {
            cpu: 0,
            kind: AccessKind::Load,
            addr: Addr(addr),
            outcome,
            now: 0,
            source: AccessSource::Workload,
            charge: StallCharge::default(),
        };
        ls.on_access(&mk(0x00, &hit));
        ls.on_access(&mk(0x40, &c2c));
        ls.on_access(&mk(0x40, &c2c));
        assert_eq!(ls.stats().touched_lines(), 2);
        assert_eq!(ls.stats().communicating_lines(), 1);
        assert_eq!(ls.stats().total_c2c(), 2);
    }
}
