//! The unified observation seam: [`SimObserver`].
//!
//! The engine emits a small set of events — every memory reference (with
//! its coherence outcome), every completed transaction, every GC interval
//! — and anything that wants to *watch* a run attaches an observer
//! instead of growing the machine a bespoke method. The Figure 10
//! timeline, the Figure 12/13 cache-size sweeps and the Figure 14/15
//! communication footprints are all observers; future tracing and
//! sampling hooks attach the same way.
//!
//! Observers are deliberately downstream of [`memsys::MemSink`]: a sink
//! is *in* the reference path (the workload pushes references through it
//! into the memory system and the CPU timer), while an observer stands
//! beside the path and sees each reference together with what the memory
//! system said about it.

use std::any::Any;
use std::marker::PhantomData;

use memsys::{AccessKind, AccessOutcome, Addr, CacheSweep, LineStats};

// The source tag lives with the trace machinery in `memsys` (captured
// streams carry it); it is re-exported here because the observer seam is
// where the engine applies it.
pub use memsys::AccessSource;

/// One observed memory reference.
#[derive(Debug, Clone, Copy)]
pub struct AccessEvent<'a> {
    /// Processor that issued the reference.
    pub cpu: usize,
    /// Reference kind.
    pub kind: AccessKind,
    /// Referenced address.
    pub addr: Addr,
    /// What the memory system did with it.
    pub outcome: &'a AccessOutcome,
    /// The issuing processor's virtual time in cycles.
    pub now: u64,
    /// Which part of the simulated system issued it.
    pub source: AccessSource,
}

/// A passive observer of a machine's execution.
///
/// All methods default to no-ops so an observer implements only what it
/// watches. The `Any` supertrait lets the machine hand back a typed
/// reference via [`ObserverHandle`] after the run.
pub trait SimObserver: Any {
    /// Called for every memory reference, after the memory system
    /// resolved it.
    fn on_access(&mut self, _event: &AccessEvent<'_>) {}

    /// Called when `cpu` retires `n` instructions that make no memory
    /// reference, tagged with the source of the executing step.
    fn on_instructions(&mut self, _cpu: usize, _n: u64, _source: AccessSource) {}

    /// Called when a stop-the-world collection finishes, with its
    /// `[start, end)` interval in cycles.
    fn on_gc_interval(&mut self, _start: u64, _end: u64) {}

    /// Called when a transaction completes on `cpu` at time `now`.
    fn on_tx_done(&mut self, _cpu: usize, _now: u64) {}

    /// Called by `begin_measurement`: discard warm-up observations.
    fn on_window_reset(&mut self) {}
}

/// A typed handle to an attached observer, returned by
/// `Machine::attach_observer` and redeemed after the run.
pub struct ObserverHandle<T> {
    pub(crate) index: usize,
    pub(crate) _marker: PhantomData<fn() -> T>,
}

// Derived impls would bound `T`; handles are plain indices.
impl<T> Clone for ObserverHandle<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for ObserverHandle<T> {}

/// The machine's collection of attached observers.
#[derive(Default)]
pub struct ObserverSet {
    observers: Vec<Box<dyn SimObserver>>,
}

impl ObserverSet {
    /// An empty set.
    pub fn new() -> Self {
        ObserverSet::default()
    }

    /// Whether any observer is attached (lets the hot path skip event
    /// construction entirely).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.observers.is_empty()
    }

    /// Attaches an observer, returning its typed handle.
    pub fn attach<T: SimObserver>(&mut self, observer: T) -> ObserverHandle<T> {
        let index = self.observers.len();
        self.observers.push(Box::new(observer));
        ObserverHandle {
            index,
            _marker: PhantomData,
        }
    }

    /// The observer behind `handle`.
    ///
    /// # Panics
    ///
    /// Panics if the handle belongs to a different machine.
    pub fn get<T: SimObserver>(&self, handle: ObserverHandle<T>) -> &T {
        let obs: &dyn Any = &*self.observers[handle.index];
        obs.downcast_ref::<T>()
            .expect("observer handle type mismatch")
    }

    /// Mutable access to the observer behind `handle`.
    ///
    /// # Panics
    ///
    /// Panics if the handle belongs to a different machine.
    pub fn get_mut<T: SimObserver>(&mut self, handle: ObserverHandle<T>) -> &mut T {
        let obs: &mut dyn Any = &mut *self.observers[handle.index];
        obs.downcast_mut::<T>()
            .expect("observer handle type mismatch")
    }

    #[inline]
    pub(crate) fn access(&mut self, event: &AccessEvent<'_>) {
        for o in &mut self.observers {
            o.on_access(event);
        }
    }

    #[inline]
    pub(crate) fn instructions(&mut self, cpu: usize, n: u64, source: AccessSource) {
        for o in &mut self.observers {
            o.on_instructions(cpu, n, source);
        }
    }

    pub(crate) fn gc_interval(&mut self, start: u64, end: u64) {
        for o in &mut self.observers {
            o.on_gc_interval(start, end);
        }
    }

    #[inline]
    pub(crate) fn tx_done(&mut self, cpu: usize, now: u64) {
        for o in &mut self.observers {
            o.on_tx_done(cpu, now);
        }
    }

    pub(crate) fn window_reset(&mut self) {
        for o in &mut self.observers {
            o.on_window_reset();
        }
    }
}

/// One bucket of the Figure 10 time series.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimelineBucket {
    /// Cache-to-cache transfers observed in the bucket.
    pub c2c: u64,
    /// Whether a garbage collection was active during the bucket.
    pub gc_active: bool,
}

/// Buckets cache-to-cache transfers over time and marks GC-active
/// buckets (Figure 10). Counts transfers from *every* source — workload,
/// collector and kernel ticks — as the paper's hardware counters would.
#[derive(Debug, Clone, Default)]
pub struct TimelineObserver {
    bucket_cycles: u64,
    buckets: Vec<TimelineBucket>,
    gc_intervals: Vec<(u64, u64)>,
}

impl TimelineObserver {
    /// Creates a timeline with the given bucket width in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_cycles` is zero.
    pub fn new(bucket_cycles: u64) -> Self {
        assert!(bucket_cycles > 0, "timeline bucket must be positive");
        TimelineObserver {
            bucket_cycles,
            buckets: Vec::new(),
            gc_intervals: Vec::new(),
        }
    }

    /// The bucket width in cycles.
    pub fn bucket_cycles(&self) -> u64 {
        self.bucket_cycles
    }

    /// The time series with GC-active marks applied.
    pub fn timeline(&self) -> Vec<TimelineBucket> {
        let mut t = self.buckets.clone();
        for &(s, e) in &self.gc_intervals {
            let first = (s / self.bucket_cycles) as usize;
            let last = (e / self.bucket_cycles) as usize;
            for b in first..=last {
                if b < t.len() {
                    t[b].gc_active = true;
                }
            }
        }
        t
    }

    fn bump(&mut self, now: u64) {
        let bucket = (now / self.bucket_cycles) as usize;
        if self.buckets.len() <= bucket {
            self.buckets.resize(bucket + 1, TimelineBucket::default());
        }
        self.buckets[bucket].c2c += 1;
    }
}

impl SimObserver for TimelineObserver {
    fn on_access(&mut self, event: &AccessEvent<'_>) {
        if event.outcome.c2c {
            self.bump(event.now);
        }
    }

    fn on_gc_interval(&mut self, start: u64, end: u64) {
        self.gc_intervals.push((start, end));
    }

    fn on_window_reset(&mut self) {
        self.buckets.clear();
        self.gc_intervals.clear();
    }
}

/// Feeds every *benchmark* reference into banks of caches of varying
/// capacity in a single pass (Figures 12/13). Kernel-tick references are
/// excluded, as the paper filters its traces to the benchmark's
/// processors (Section 3.3).
#[derive(Debug, Clone)]
pub struct SweepObserver {
    isweep: CacheSweep,
    dsweep: CacheSweep,
}

impl SweepObserver {
    /// Creates the observer from an instruction and a data sweep.
    pub fn new(isweep: CacheSweep, dsweep: CacheSweep) -> Self {
        SweepObserver { isweep, dsweep }
    }

    /// Both sweeps at the paper's capacity axis.
    pub fn paper() -> Self {
        SweepObserver::new(CacheSweep::paper(), CacheSweep::paper())
    }

    /// The instruction-cache sweep.
    pub fn isweep(&self) -> &CacheSweep {
        &self.isweep
    }

    /// The data-cache sweep.
    pub fn dsweep(&self) -> &CacheSweep {
        &self.dsweep
    }
}

impl SimObserver for SweepObserver {
    fn on_access(&mut self, event: &AccessEvent<'_>) {
        if event.source == AccessSource::KernelTick {
            return;
        }
        if event.kind.is_data() {
            self.dsweep.access(event.addr);
        } else {
            self.isweep.access(event.addr);
        }
    }

    fn on_window_reset(&mut self) {
        self.isweep.reset_stats();
        self.dsweep.reset_stats();
    }
}

/// Tracks per-line communication (Figures 14/15): which lines were
/// touched and which supplied cache-to-cache transfers.
#[derive(Debug, Clone, Default)]
pub struct LineStatsObserver {
    stats: LineStats,
}

impl LineStatsObserver {
    /// An empty tracker.
    pub fn new() -> Self {
        LineStatsObserver::default()
    }

    /// The accumulated per-line statistics.
    pub fn stats(&self) -> &LineStats {
        &self.stats
    }
}

impl SimObserver for LineStatsObserver {
    fn on_access(&mut self, event: &AccessEvent<'_>) {
        let line = event.addr.line();
        self.stats.record_touch(line);
        if event.outcome.c2c {
            self.stats.record_c2c(line);
        }
    }

    fn on_window_reset(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsys::HitLevel;

    fn c2c_outcome() -> AccessOutcome {
        AccessOutcome {
            level: HitLevel::CacheToCache,
            c2c: true,
            writeback: false,
        }
    }

    #[test]
    fn timeline_buckets_and_marks_gc() {
        let mut t = TimelineObserver::new(100);
        let o = c2c_outcome();
        for now in [5u64, 50, 250] {
            t.on_access(&AccessEvent {
                cpu: 0,
                kind: AccessKind::Load,
                addr: Addr(0),
                outcome: &o,
                now,
                source: AccessSource::Workload,
            });
        }
        t.on_gc_interval(100, 199);
        let tl = t.timeline();
        assert_eq!(tl.len(), 3);
        assert_eq!(tl[0].c2c, 2);
        assert_eq!(tl[2].c2c, 1);
        assert!(tl[1].gc_active && !tl[0].gc_active && !tl[2].gc_active);
    }

    #[test]
    fn sweep_observer_filters_kernel_ticks() {
        let mut s = SweepObserver::new(
            CacheSweep::new(&[1 << 16]).unwrap(),
            CacheSweep::new(&[1 << 16]).unwrap(),
        );
        let o = AccessOutcome {
            level: HitLevel::Memory,
            c2c: false,
            writeback: false,
        };
        let mk = |kind, source| AccessEvent {
            cpu: 0,
            kind,
            addr: Addr(0x40),
            outcome: &o,
            now: 0,
            source,
        };
        s.on_access(&mk(AccessKind::Load, AccessSource::Workload));
        s.on_access(&mk(AccessKind::Ifetch, AccessSource::Collector));
        s.on_access(&mk(AccessKind::Store, AccessSource::KernelTick));
        assert_eq!(s.dsweep().results()[0].1.accesses, 1, "tick excluded");
        assert_eq!(s.isweep().results()[0].1.accesses, 1);
    }

    #[test]
    fn observer_set_round_trips_typed_handles() {
        let mut set = ObserverSet::new();
        let h = set.attach(TimelineObserver::new(10));
        let o = c2c_outcome();
        set.access(&AccessEvent {
            cpu: 1,
            kind: AccessKind::Store,
            addr: Addr(0x80),
            outcome: &o,
            now: 3,
            source: AccessSource::Workload,
        });
        assert_eq!(set.get(h).timeline()[0].c2c, 1);
        set.window_reset();
        assert!(set.get(h).timeline().is_empty());
    }

    #[test]
    fn line_stats_observer_tracks_touch_and_c2c() {
        let mut ls = LineStatsObserver::new();
        let hit = AccessOutcome {
            level: HitLevel::L1,
            c2c: false,
            writeback: false,
        };
        let c2c = c2c_outcome();
        let mk = |addr, outcome| AccessEvent {
            cpu: 0,
            kind: AccessKind::Load,
            addr: Addr(addr),
            outcome,
            now: 0,
            source: AccessSource::Workload,
        };
        ls.on_access(&mk(0x00, &hit));
        ls.on_access(&mk(0x40, &c2c));
        ls.on_access(&mk(0x40, &c2c));
        assert_eq!(ls.stats().touched_lines(), 2);
        assert_eq!(ls.stats().communicating_lines(), 1);
        assert_eq!(ls.stats().total_c2c(), 2);
    }
}
