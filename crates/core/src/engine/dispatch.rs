//! The scheduler: thread states, the ready queue, lock management, and
//! processor placement.
//!
//! Models the Solaris TS-class dispatcher the paper runs under: a
//! `psrset` processor binding, FIFO ready queue with weak cache
//! affinity, quantum-expiry preemption at step boundaries, blocking
//! monitors that idle, and spinning kernel mutexes that burn time in
//! their caller's mode. The scheduler owns *who runs where*; it charges
//! time through [`Accounting`] but never touches the memory system.

use std::collections::VecDeque;

use sysos::modes::ExecMode;
use sysos::sched::ProcessorSet;
use workloads::model::LockDesc;
use workloads::WaitKind;

use super::accounting::Accounting;

/// Scheduler tunables, lifted from the machine configuration.
#[derive(Debug, Clone, Copy)]
pub struct SchedParams {
    /// Time quantum in cycles (preemption at the next step boundary).
    pub quantum: u64,
    /// Kernel cycles charged per context switch.
    pub ctx_switch_cost: u64,
    /// Affinity rechoose interval: a ready thread is only migrated to a
    /// foreign processor after waiting this long.
    pub rechoose: u64,
}

/// What a thread is doing, from the scheduler's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Waiting in the ready queue.
    Ready,
    /// Running on the given processor.
    Running(usize),
    /// Parked on a lock.
    Blocked(u32),
    /// Spinning on a lock, holding its processor, in the given mode.
    Spinning(u32, usize, ExecMode),
    /// Asleep until the given cycle.
    Sleeping(u64),
    /// Finished.
    Done,
}

#[derive(Debug, Clone, Copy)]
struct ThreadState {
    status: Status,
    ready_at: u64,
    last_cpu: Option<usize>,
}

#[derive(Debug, Clone)]
struct LockState {
    desc: LockDesc,
    holders: u32,
    waiters: VecDeque<usize>,
}

/// The scheduler: ready queue, per-thread states, lock tables, and the
/// processor set the benchmark is bound to.
#[derive(Debug, Clone)]
pub struct Scheduler {
    params: SchedParams,
    pset: ProcessorSet,
    threads: Vec<ThreadState>,
    locks: Vec<LockState>,
    ready: VecDeque<usize>,
    running: Vec<Option<usize>>,
    /// Cycle at which each processor's current thread was dispatched.
    dispatched_at: Vec<u64>,
}

impl Scheduler {
    /// Builds a scheduler for `thread_count` threads over `cpus`
    /// processors, bound to `pset`, with the given lock table. All
    /// threads start ready.
    pub fn new(
        params: SchedParams,
        pset: ProcessorSet,
        cpus: usize,
        thread_count: usize,
        lock_table: Vec<LockDesc>,
    ) -> Self {
        Scheduler {
            params,
            pset,
            threads: (0..thread_count)
                .map(|_| ThreadState {
                    status: Status::Ready,
                    ready_at: 0,
                    last_cpu: None,
                })
                .collect(),
            locks: lock_table
                .into_iter()
                .map(|desc| LockState {
                    desc,
                    holders: 0,
                    waiters: VecDeque::new(),
                })
                .collect(),
            ready: (0..thread_count).collect(),
            running: vec![None; cpus],
            dispatched_at: vec![0; cpus],
        }
    }

    /// The benchmark's processor set.
    pub fn pset(&self) -> &ProcessorSet {
        &self.pset
    }

    /// Whether any thread is ready to run.
    pub fn has_ready(&self) -> bool {
        !self.ready.is_empty()
    }

    /// The thread currently on `cpu`, if any.
    pub fn thread_on(&self, cpu: usize) -> Option<usize> {
        self.running[cpu]
    }

    /// Processors currently running a thread.
    pub fn running_cpus(&self) -> impl Iterator<Item = usize> + '_ {
        self.running
            .iter()
            .enumerate()
            .filter_map(|(c, t)| t.map(|_| c))
    }

    /// Processors whose thread may be stepped (running, not spinning on
    /// a lock — spinners wait for their grant).
    pub fn steppable_cpus(&self) -> impl Iterator<Item = usize> + '_ {
        self.running.iter().enumerate().filter_map(|(c, t)| {
            t.filter(|&th| matches!(self.threads[th].status, Status::Running(_)))
                .map(|_| c)
        })
    }

    /// Current virtual time: the slowest running processor's clock (all
    /// processors' progress is bounded below by it).
    pub fn time(&self, acct: &Accounting) -> u64 {
        self.running_cpus()
            .map(|c| acct.clock(c))
            .min()
            .unwrap_or_else(|| acct.clocks().iter().copied().max().unwrap_or(0))
    }

    /// Assigns ready threads to free processors in the set, with cache
    /// affinity: a free processor first looks for a waiter that last ran
    /// on it (Solaris's dispatcher does the same; without this, every
    /// short monitor block would migrate the thread and needlessly turn
    /// its whole cache footprint into coherence traffic).
    pub fn dispatch(&mut self, acct: &mut Accounting) {
        // Virtual "now" for rechoose eligibility: an idle processor's own
        // clock is stale, so compare against global progress too.
        let now_global = self.time(acct);
        let mut progressed = true;
        while progressed && !self.ready.is_empty() {
            progressed = false;
            let free: Vec<usize> = self
                .pset
                .cpus()
                .iter()
                .copied()
                .filter(|&c| self.running[c].is_none())
                .collect();
            for cpu in free {
                if self.ready.is_empty() {
                    break;
                }
                // Anti-starvation first: once the queue head has waited a
                // full quantum it runs next, wherever. Then home
                // processor; then any thread past its rechoose interval.
                let now = acct.clock(cpu).max(now_global);
                let head_wait = now.saturating_sub(self.threads[self.ready[0]].ready_at);
                let pick = if head_wait > self.params.quantum {
                    Some(0)
                } else {
                    self.ready
                        .iter()
                        .position(|&t| self.threads[t].last_cpu == Some(cpu))
                        .or_else(|| {
                            self.ready.iter().position(|&t| {
                                let ts = &self.threads[t];
                                ts.last_cpu.is_none() || ts.ready_at + self.params.rechoose <= now
                            })
                        })
                };
                let Some(pos) = pick else { continue };
                let t = self.ready.remove(pos).expect("position valid");
                self.place(t, cpu, acct);
                progressed = true;
            }
        }
        // Anti-livelock: if nothing at all is running but threads are
        // ready, force the head onto any free processor.
        if self.running_cpus().next().is_none() {
            if let Some(&cpu) = self
                .pset
                .cpus()
                .iter()
                .find(|&&c| self.running[c].is_none())
            {
                if let Some(t) = self.ready.pop_front() {
                    self.place(t, cpu, acct);
                }
            }
        }
    }

    fn place(&mut self, t: usize, cpu: usize, acct: &mut Accounting) {
        let ready_at = self.threads[t].ready_at;
        acct.fill(cpu, ready_at, ExecMode::Idle);
        self.running[cpu] = Some(t);
        self.threads[t].status = Status::Running(cpu);
        self.threads[t].last_cpu = Some(cpu);
        self.dispatched_at[cpu] = acct.clock(cpu);
    }

    /// Moves due sleepers to the ready queue.
    pub fn wake_sleepers(&mut self, now: u64) {
        for t in 0..self.threads.len() {
            if let Status::Sleeping(until) = self.threads[t].status {
                if until <= now {
                    self.threads[t].status = Status::Ready;
                    self.threads[t].ready_at = until;
                    self.ready.push_back(t);
                }
            }
        }
    }

    /// The earliest sleeping thread's wake time, if any thread sleeps.
    pub fn earliest_wake(&self) -> Option<u64> {
        self.threads
            .iter()
            .filter_map(|t| match t.status {
                Status::Sleeping(until) => Some(until),
                _ => None,
            })
            .min()
    }

    /// Puts the thread on `cpu` to sleep until `until`, freeing the
    /// processor.
    pub fn sleep(&mut self, cpu: usize, until: u64) {
        let thread = self.running[cpu].expect("sleep on busy cpu");
        self.threads[thread].status = Status::Sleeping(until);
        self.running[cpu] = None;
    }

    /// Marks the thread on `cpu` as finished, freeing the processor.
    pub fn finish(&mut self, cpu: usize) {
        let thread = self.running[cpu].expect("finish on busy cpu");
        self.threads[thread].status = Status::Done;
        self.running[cpu] = None;
    }

    /// Preempts the running thread at a step boundary once its quantum
    /// has expired and someone else is waiting for a processor. Without
    /// this, a non-blocking thread would monopolize its processor forever
    /// (and a 25-warehouse SPECjbb on one processor would degenerate to a
    /// single warehouse).
    pub fn maybe_preempt(&mut self, cpu: usize, acct: &mut Accounting) {
        if self.ready.is_empty() {
            return;
        }
        if acct.clock(cpu) - self.dispatched_at[cpu] < self.params.quantum {
            return;
        }
        let Some(thread) = self.running[cpu] else {
            return;
        };
        acct.advance(cpu, ExecMode::System, self.params.ctx_switch_cost);
        self.threads[thread].status = Status::Ready;
        self.threads[thread].ready_at = acct.clock(cpu);
        self.ready.push_back(thread);
        self.running[cpu] = None;
    }

    /// Handles a thread's lock-acquire request: grants immediately when
    /// uncontended, otherwise spins or parks per the lock's wait kind.
    pub fn acquire(&mut self, thread: usize, cpu: usize, lock: u32, mode: ExecMode) {
        let l = &mut self.locks[lock as usize];
        if l.holders < l.desc.capacity && l.waiters.is_empty() {
            l.holders += 1;
            return; // granted immediately; thread keeps running
        }
        let queue_len = l.waiters.len();
        l.waiters.push_back(thread);
        let spin = match l.desc.wait {
            WaitKind::Block => false,
            WaitKind::Spin => true,
            // Adaptive (HotSpot-style): spin while the queue is short —
            // the hold is brief and parking would cost a migration —
            // park once contention is real.
            WaitKind::Adaptive => queue_len < 2,
        };
        if spin {
            // The thread burns its processor until granted.
            self.threads[thread].status = Status::Spinning(lock, cpu, mode);
        } else {
            self.threads[thread].status = Status::Blocked(lock);
            self.running[cpu] = None;
        }
    }

    /// Releases a lock held by the thread on `cpu`, granting waiters.
    ///
    /// # Panics
    ///
    /// Panics if the lock is not held.
    pub fn release(&mut self, cpu: usize, lock: u32, acct: &mut Accounting) {
        let now = acct.clock(cpu);
        let mut grants = Vec::new();
        {
            let l = &mut self.locks[lock as usize];
            assert!(l.holders > 0, "release of unheld lock {lock}");
            l.holders -= 1;
            while l.holders < l.desc.capacity {
                let Some(next) = l.waiters.pop_front() else {
                    break;
                };
                l.holders += 1;
                grants.push(next);
            }
        }
        for next in grants {
            match self.threads[next].status {
                Status::Blocked(_) => {
                    self.threads[next].status = Status::Ready;
                    self.threads[next].ready_at = now;
                    self.ready.push_back(next);
                }
                Status::Spinning(_, spin_cpu, mode) => {
                    // Spinner kept its processor busy until the grant.
                    acct.fill(spin_cpu, now, mode);
                    self.threads[next].status = Status::Running(spin_cpu);
                }
                other => unreachable!("waiter in unexpected state {other:?}"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> SchedParams {
        SchedParams {
            quantum: 1000,
            ctx_switch_cost: 10,
            rechoose: 0,
        }
    }

    fn sched(threads: usize, cpus: usize, pset: usize) -> (Scheduler, Accounting) {
        (
            Scheduler::new(
                params(),
                ProcessorSet::first_n(pset, cpus),
                cpus,
                threads,
                vec![LockDesc::blocking_mutex()],
            ),
            Accounting::new(cpus),
        )
    }

    #[test]
    fn dispatch_fills_the_processor_set() {
        let (mut s, mut a) = sched(4, 4, 2);
        s.dispatch(&mut a);
        assert_eq!(s.running_cpus().count(), 2, "bound to 2 of 4 cpus");
        assert_eq!(s.steppable_cpus().count(), 2);
    }

    #[test]
    fn affinity_prefers_the_home_processor() {
        let (mut s, mut a) = sched(2, 2, 2);
        s.dispatch(&mut a);
        let home = s.thread_on(0).unwrap();
        // Sleep it, let the processor idle, wake it: it returns home.
        s.sleep(0, 100);
        s.wake_sleepers(100);
        s.dispatch(&mut a);
        assert_eq!(s.thread_on(0), Some(home), "woken thread returns home");
    }

    #[test]
    fn contended_blocking_lock_parks_and_grants_in_fifo_order() {
        let (mut s, mut a) = sched(3, 3, 3);
        s.dispatch(&mut a);
        s.acquire(0, 0, 0, ExecMode::User); // granted
        s.acquire(1, 1, 0, ExecMode::User); // parks
        assert_eq!(s.thread_on(1), None, "waiter gave up its processor");
        a.advance(0, ExecMode::User, 50);
        s.release(0, 0, &mut a);
        assert!(s.has_ready(), "waiter requeued on grant");
    }

    #[test]
    fn spinner_keeps_its_processor_and_burns_time() {
        let (mut s, mut a) = sched(2, 2, 2);
        let lock = vec![LockDesc::spin_mutex()];
        s.locks = lock
            .into_iter()
            .map(|desc| LockState {
                desc,
                holders: 0,
                waiters: VecDeque::new(),
            })
            .collect();
        s.dispatch(&mut a);
        s.acquire(0, 0, 0, ExecMode::System);
        s.acquire(1, 1, 0, ExecMode::System); // spins on cpu 1
        assert_eq!(s.thread_on(1), Some(1), "spinner holds its processor");
        assert_eq!(s.steppable_cpus().count(), 1, "spinner is not steppable");
        a.advance(0, ExecMode::User, 500);
        s.release(0, 0, &mut a);
        assert_eq!(a.clock(1), 500, "spin time charged up to the grant");
        assert_eq!(s.steppable_cpus().count(), 2);
    }

    #[test]
    fn quantum_expiry_preempts_when_others_wait() {
        let (mut s, mut a) = sched(3, 1, 1);
        s.dispatch(&mut a);
        let first = s.thread_on(0).unwrap();
        a.advance(0, ExecMode::User, 2000); // quantum is 1000
        s.maybe_preempt(0, &mut a);
        assert_eq!(s.thread_on(0), None, "thread preempted");
        s.dispatch(&mut a);
        assert_ne!(s.thread_on(0), Some(first), "another thread runs next");
    }
}
