//! The cycle-attribution profiler: phase × component × cause × region
//! CPI stacks.
//!
//! [`AttribProfiler`] stands on the [`SimObserver`] seam and folds every
//! stall cycle the CPU timers charge into a four-frame stack,
//! `phase;component;cause;region`:
//!
//! - **phase** — who was executing: `mutator` (workload steps), `gc`
//!   (collector steps), `kernel` (clock ticks). Stop-the-world
//!   collection makes the source tag and the GC driver's pause
//!   choreography agree by construction; the profiler still listens to
//!   [`SimObserver::on_gc_interval`] and keeps the driver's pause
//!   totals as counters, so the two accountings can be cross-checked.
//! - **component** — which CPI-stack slice the paper's Figure 7 draws:
//!   `instr_stall`, `data_stall`, or `other` (base execution).
//! - **cause** — why the pipeline stalled: `l2_hit`, `memory` (DRAM,
//!   including upgrades, which the timer folds into the same slice),
//!   `c2c` (dirty cache-to-cache transfer), `store_buffer`,
//!   `raw_hazard`, or `base`.
//! - **region** — where the reference landed in the JVM's address
//!   space, classified through the workload's [`RegionMap`] (`eden`,
//!   `survivor`, `old_gen`, `code`, `lock`, `stack`, `kernel`, or
//!   `other`).
//!
//! The profiler is an observer: it reads the [`StallCharge`] the timer
//! already computed, so attaching it perturbs nothing — runs with and
//! without it stay bit-identical in every pre-existing counter and
//! record. Base ("other") cycles are reconstructed at fold time from
//! per-phase retired-instruction counts and the configured base CPI,
//! mirroring what [`CpuTimer::retire`](simcpu::CpuTimer) charges.
//!
//! [`AttribProfiler::to_records`] is called on the worker thread after
//! the job body, off the input-order merge, so attribution rides the
//! RunLog's bit-identity discipline at any worker count.

use std::collections::BTreeMap;

use memsys::{AccessKind, HitLevel, RegionMap};
use probes::registry::{CounterDesc, CounterKind, CounterSet};
use probes::runlog::AttribRecord;

use super::observer::{AccessEvent, AccessSource, SimObserver};

const fn count(name: &'static str) -> CounterDesc {
    CounterDesc::new(name, CounterKind::Count)
}

const fn cycles(name: &'static str) -> CounterDesc {
    CounterDesc::new(name, CounterKind::Cycles)
}

static ATTRIB_DESCS: [CounterDesc; 7] = [
    cycles("attrib.cycles"),
    count("attrib.stacks"),
    cycles("attrib.mutator_cycles"),
    cycles("attrib.gc_cycles"),
    cycles("attrib.kernel_cycles"),
    count("attrib.gc_pauses"),
    cycles("attrib.gc_pause_cycles"),
];

/// The phases attribution distinguishes, in fold order.
const PHASES: [&str; 3] = ["mutator", "gc", "kernel"];

/// Stack frame used for base-execution rows, which have no single
/// memory region.
const ALL_REGIONS: &str = "all";

fn phase_of(source: AccessSource) -> usize {
    match source {
        AccessSource::Workload => 0,
        AccessSource::Collector => 1,
        AccessSource::KernelTick => 2,
    }
}

/// Attributes every charged stall cycle to a
/// `phase;component;cause;region` stack. Attach with
/// `Machine::attach_observer`, redeem after the run, and convert with
/// [`AttribProfiler::to_records`].
#[derive(Debug, Clone)]
pub struct AttribProfiler {
    regions: RegionMap,
    base_cpi: f64,
    /// Charged stall cycles keyed by
    /// `(phase, component, cause, region)`; BTreeMap iteration keeps
    /// the fold deterministic.
    stalls: BTreeMap<(usize, &'static str, &'static str, &'static str), u64>,
    /// Retired instructions per phase, for the base ("other") slice.
    instructions: [u64; 3],
    gc_pauses: u64,
    gc_pause_cycles: u64,
}

impl AttribProfiler {
    /// Creates a profiler classifying through `regions` and charging
    /// base execution at `base_cpi` cycles per instruction (pass the
    /// machine's `MachineConfig::pipeline.base_cpi`).
    pub fn new(regions: RegionMap, base_cpi: f64) -> Self {
        AttribProfiler {
            regions,
            base_cpi,
            stalls: BTreeMap::new(),
            instructions: [0; 3],
            gc_pauses: 0,
            gc_pause_cycles: 0,
        }
    }

    /// Retired instructions in `phase` (`"mutator"`, `"gc"`,
    /// `"kernel"`).
    pub fn phase_instructions(&self, phase: &str) -> u64 {
        PHASES
            .iter()
            .position(|p| *p == phase)
            .map_or(0, |i| self.instructions[i])
    }

    /// The folded stacks with their cycle weights, phase-major, base
    /// rows included: the in-memory form of the folded-stack export.
    pub fn folded(&self) -> Vec<(String, u64)> {
        let mut out = Vec::with_capacity(self.stalls.len() + PHASES.len());
        for (&(phase, component, cause, region), &cyc) in &self.stalls {
            if cyc > 0 {
                out.push((
                    format!("{};{component};{cause};{region}", PHASES[phase]),
                    cyc,
                ));
            }
        }
        for (i, phase) in PHASES.iter().enumerate() {
            let base = (self.instructions[i] as f64 * self.base_cpi) as u64;
            if base > 0 {
                out.push((format!("{phase};other;base;{ALL_REGIONS}"), base));
            }
        }
        out
    }

    /// Total cycles attributed across every stack, base included.
    pub fn total_cycles(&self) -> u64 {
        self.folded().iter().map(|&(_, c)| c).sum()
    }

    /// Cycles attributed to one phase across its stacks.
    pub fn phase_cycles(&self, phase: &str) -> u64 {
        let prefix = format!("{phase};");
        self.folded()
            .iter()
            .filter(|(s, _)| s.starts_with(&prefix))
            .map(|&(_, c)| c)
            .sum()
    }

    /// Converts the fold into RunLog `attrib` records for job
    /// `(run, id)`.
    pub fn to_records(&self, run: usize, id: usize) -> Vec<AttribRecord> {
        self.folded()
            .into_iter()
            .map(|(stack, cycles)| AttribRecord {
                run,
                id,
                stack,
                cycles,
            })
            .collect()
    }

    fn charge(&mut self, event: &AccessEvent<'_>) {
        let phase = phase_of(event.source);
        let region = self.regions.classify(event.addr);
        if event.charge.cycles > 0 {
            let (component, cause) = match event.kind {
                AccessKind::Ifetch => ("instr_stall", cause_of_level(event.outcome.level)),
                AccessKind::Load => ("data_stall", cause_of_level(event.outcome.level)),
                AccessKind::Store => ("data_stall", "store_buffer"),
            };
            *self
                .stalls
                .entry((phase, component, cause, region))
                .or_insert(0) += event.charge.cycles;
        }
        if event.charge.raw_cycles > 0 {
            *self
                .stalls
                .entry((phase, "data_stall", "raw_hazard", region))
                .or_insert(0) += event.charge.raw_cycles;
        }
    }
}

/// Maps a hit level to the paper's stall-cause vocabulary. The timer
/// folds upgrade latency into the memory slice, so the fold does too.
fn cause_of_level(level: HitLevel) -> &'static str {
    match level {
        HitLevel::L1 => "l1",
        HitLevel::L2 => "l2_hit",
        HitLevel::Upgrade | HitLevel::Memory => "memory",
        HitLevel::CacheToCache => "c2c",
    }
}

impl SimObserver for AttribProfiler {
    fn on_access(&mut self, event: &AccessEvent<'_>) {
        self.charge(event);
    }

    fn on_instructions(&mut self, _cpu: usize, n: u64, source: AccessSource) {
        self.instructions[phase_of(source)] += n;
    }

    fn on_gc_interval(&mut self, start: u64, end: u64) {
        self.gc_pauses += 1;
        self.gc_pause_cycles += end - start;
    }

    fn on_window_reset(&mut self, _now: u64) {
        self.stalls.clear();
        self.instructions = [0; 3];
        self.gc_pauses = 0;
        self.gc_pause_cycles = 0;
    }
}

impl CounterSet for AttribProfiler {
    fn descriptors(&self) -> &'static [CounterDesc] {
        &ATTRIB_DESCS
    }

    fn values(&self, out: &mut Vec<u64>) {
        let folded = self.folded();
        let phase_sum = |phase: &str| {
            let prefix = format!("{phase};");
            folded
                .iter()
                .filter(|(s, _)| s.starts_with(&prefix))
                .map(|&(_, c)| c)
                .sum::<u64>()
        };
        out.extend([
            folded.iter().map(|&(_, c)| c).sum(),
            folded.len() as u64,
            phase_sum("mutator"),
            phase_sum("gc"),
            phase_sum("kernel"),
            self.gc_pauses,
            self.gc_pause_cycles,
        ]);
    }
}

/// The attribution counter descriptors, for the drift-policy assembly
/// in [`super::probe::descriptor_tables`].
pub(crate) fn descriptor_table() -> &'static [CounterDesc] {
    &ATTRIB_DESCS
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsys::{AccessOutcome, Addr, AddrRange};
    use probes::Snapshot;
    use simcpu::StallCharge;

    fn regions() -> RegionMap {
        let mut map = RegionMap::new();
        map.insert(AddrRange::new(Addr(0x1000), 0x1000), "eden");
        map.insert(AddrRange::new(Addr(0x2000), 0x1000), "old_gen");
        map
    }

    fn outcome(level: HitLevel) -> AccessOutcome {
        AccessOutcome {
            level,
            c2c: level == HitLevel::CacheToCache,
            writeback: false,
            mem_cycles: None,
        }
    }

    fn event<'a>(
        kind: AccessKind,
        addr: u64,
        outcome: &'a AccessOutcome,
        source: AccessSource,
        charge: StallCharge,
    ) -> AccessEvent<'a> {
        AccessEvent {
            cpu: 0,
            kind,
            addr: Addr(addr),
            outcome: outcome,
            now: 0,
            source,
            charge,
        }
    }

    #[test]
    fn charges_fold_into_four_frame_stacks() {
        let mut p = AttribProfiler::new(regions(), 1.5);
        let mem = outcome(HitLevel::Memory);
        let c2c = outcome(HitLevel::CacheToCache);
        let charge = |cycles| StallCharge {
            cycles,
            raw_cycles: 0,
        };
        p.on_access(&event(
            AccessKind::Load,
            0x1000,
            &mem,
            AccessSource::Workload,
            charge(75),
        ));
        p.on_access(&event(
            AccessKind::Load,
            0x2000,
            &c2c,
            AccessSource::Workload,
            charge(105),
        ));
        p.on_access(&event(
            AccessKind::Ifetch,
            0x5000,
            &mem,
            AccessSource::Collector,
            charge(75),
        ));
        p.on_access(&event(
            AccessKind::Store,
            0x1040,
            &mem,
            AccessSource::Workload,
            charge(12),
        ));
        // A RAW hazard rides on an otherwise free access.
        p.on_access(&event(
            AccessKind::Load,
            0x1080,
            &outcome(HitLevel::L1),
            AccessSource::Workload,
            StallCharge {
                cycles: 0,
                raw_cycles: 4,
            },
        ));
        let folded = p.folded();
        let get = |stack: &str| folded.iter().find(|(s, _)| s == stack).map(|&(_, c)| c);
        assert_eq!(get("mutator;data_stall;memory;eden"), Some(75));
        assert_eq!(get("mutator;data_stall;c2c;old_gen"), Some(105));
        assert_eq!(get("gc;instr_stall;memory;other"), Some(75));
        assert_eq!(get("mutator;data_stall;store_buffer;eden"), Some(12));
        assert_eq!(get("mutator;data_stall;raw_hazard;eden"), Some(4));
        assert_eq!(p.total_cycles(), 75 + 105 + 75 + 12 + 4);
    }

    #[test]
    fn base_rows_reconstruct_retirement_per_phase() {
        let mut p = AttribProfiler::new(RegionMap::new(), 1.3);
        p.on_instructions(0, 1000, AccessSource::Workload);
        p.on_instructions(1, 200, AccessSource::Collector);
        let folded = p.folded();
        assert_eq!(folded.len(), 2);
        assert!(folded.contains(&("mutator;other;base;all".into(), 1300)));
        assert!(folded.contains(&("gc;other;base;all".into(), 260)));
        assert_eq!(p.phase_instructions("mutator"), 1000);
        assert_eq!(p.phase_cycles("gc"), 260);
    }

    #[test]
    fn counters_match_the_fold_and_reset_with_the_window() {
        let mut p = AttribProfiler::new(regions(), 1.0);
        p.on_instructions(0, 100, AccessSource::Workload);
        let mem = outcome(HitLevel::Memory);
        p.on_access(&event(
            AccessKind::Load,
            0x1000,
            &mem,
            AccessSource::Workload,
            StallCharge {
                cycles: 75,
                raw_cycles: 0,
            },
        ));
        p.on_gc_interval(500, 900);
        let snap = Snapshot::of(&p);
        assert!(snap.names_unique());
        assert_eq!(snap.get("attrib.cycles"), Some(175));
        assert_eq!(snap.get("attrib.stacks"), Some(2));
        assert_eq!(snap.get("attrib.mutator_cycles"), Some(175));
        assert_eq!(snap.get("attrib.gc_cycles"), Some(0));
        assert_eq!(snap.get("attrib.gc_pauses"), Some(1));
        assert_eq!(snap.get("attrib.gc_pause_cycles"), Some(400));
        // The span counter equals the record sum by construction — the
        // invariant `simreport --check` cross-validates.
        let records = p.to_records(0, 0);
        assert_eq!(
            records.iter().map(|r| r.cycles).sum::<u64>(),
            snap.get("attrib.cycles").unwrap()
        );

        p.on_window_reset(1000);
        assert!(p.folded().is_empty());
        assert_eq!(Snapshot::of(&p).get("attrib.gc_pause_cycles"), Some(0));
    }

    #[test]
    fn zero_charge_l1_hits_attribute_nothing() {
        let mut p = AttribProfiler::new(regions(), 1.0);
        let l1 = outcome(HitLevel::L1);
        p.on_access(&event(
            AccessKind::Load,
            0x1000,
            &l1,
            AccessSource::Workload,
            StallCharge::default(),
        ));
        assert!(p.folded().is_empty());
        assert_eq!(p.total_cycles(), 0);
    }
}
