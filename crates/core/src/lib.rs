//! # middlesim — the characterization harness
//!
//! Reproduces every measured figure (4–16) of *"Memory System Behavior of
//! Java-Based Middleware"* (Karlsson, Moore, Hagersten, Wood — HPCA 2003)
//! by running the [`workloads`] models on a simulated E6000-class machine.
//!
//! - [`engine`] — the layered simulation engine: the discrete-event
//!   kernel, the scheduler, GC orchestration, mode accounting, and the
//!   [`engine::SimObserver`] seam through which interval samplers, cache
//!   sweeps and per-line statistics watch a run;
//! - [`experiment`] — warm-up / measurement-window orchestration, the
//!   multi-seed variability methodology, and the [`ExperimentPlan`]
//!   worker pool that fans seeds × configurations over cores with
//!   bit-identical serial/parallel results;
//! - [`figures`] — one experiment per paper figure, each returning typed
//!   series and rendering the same rows the figure plots.

pub mod cluster;
pub mod engine;
pub mod experiment;
pub mod figures;
pub mod score;

pub use cluster::{replay_into_database, run_cluster, run_cluster_with, ClusterReport};
pub use engine::{
    measure_sampled, replay_trace, replay_traces, AccessSource, AttribProfiler, IntervalSample,
    IntervalSampler, LineStatsObserver, Machine, MachineConfig, ObserverHandle, ReplayReport,
    SampledRun, SamplingConfig, SimMode, SimObserver, SweepObserver, TimelineCollector,
    TraceObserver, WindowReport,
};
pub use experiment::{
    ecperf_machine, ecperf_machine_with, jbb_machine, jbb_machine_with, largest_first_order,
    measure, measure_in, measure_seeds, Effort, ExperimentPlan, JobTelemetry,
};
pub use score::{official_run, official_run_with, JbbScore, RampPoint, RAMP_TOLERANCE};
