//! # middlesim — the characterization harness
//!
//! Reproduces every measured figure (4–16) of *"Memory System Behavior of
//! Java-Based Middleware"* (Karlsson, Moore, Hagersten, Wood — HPCA 2003)
//! by running the [`workloads`] models on a simulated E6000-class machine.
//!
//! - [`machine`] — the discrete-event engine: processors, clocks,
//!   scheduler, locks, stop-the-world GC, mode accounting;
//!   
//! - [`experiment`] — warm-up / measurement-window orchestration and the
//!   multi-seed variability methodology;
//! - [`figures`] — one experiment per paper figure, each returning typed
//!   series and rendering the same rows the figure plots.

pub mod cluster;
pub mod experiment;
pub mod figures;
pub mod machine;
pub mod score;

pub use experiment::{
    ecperf_machine, ecperf_machine_with, jbb_machine, jbb_machine_with, measure, measure_seeds,
    Effort,
};
pub use cluster::{replay_into_database, run_cluster, ClusterReport};
pub use machine::{Machine, MachineConfig, TimelineBucket, WindowReport};
pub use score::{official_run, JbbScore, RampPoint};
