//! Two-tier co-simulation: the application server plus the database
//! machine.
//!
//! The paper's ECperf deployment spans four machines (Figure 3); its
//! simulations ran four Simics instances and *filtered* the traffic so
//! that only the application server's processors reached the memory-
//! system simulator (Section 3.3). This module reproduces that workflow:
//! the application-server tier runs on its [`Machine`] as usual (remote
//! tiers modeled as reply latencies), every database query is logged, and
//! the log is then replayed into the database tier — its own machine with
//! its own address space, caches and timing — so both tiers' memory
//! behavior can be reported side by side, with the middle tier cleanly
//! isolated exactly as the paper isolates it.
//!
//! Both stages run on the [`ExperimentPlan`]: the app tier fans its
//! seeds across the worker pool, and each seed's query log flows into a
//! database-replay job as a plan dependency. Results merge in seed
//! order, so the report is bit-identical whatever the worker count.

use memsys::{MemorySystem, SystemSink};
use simcpu::CpuTimer;
use simstats::{fbytes, fnum, Table};
use workloads::ecperf::database::{Database, DatabaseConfig};
use workloads::ecperf::{DbQuery, Ecperf, EcperfConfig};

use crate::engine::{Machine, WindowReport};
use crate::experiment::{ecperf_machine_with, measure, ExperimentPlan};
use crate::Effort;

/// Address base of the database machine's memory (its own machine: the
/// space is independent of the app server's, the constant just keeps the
/// two visually distinct in traces).
const DB_MACHINE_BASE: u64 = 0x8000_0000;

/// Per-tier results of a cluster run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    /// The middle tier's window report for the first seed (the paper's
    /// monitored machine).
    pub app: WindowReport,
    /// App-server data misses per 1000 instructions (mean over seeds).
    pub app_miss_per_kilo: f64,
    /// Queries the database served, summed over seeds.
    pub db_queries: u64,
    /// Database-tier CPI (mean over seeds).
    pub db_cpi: f64,
    /// Database-tier data misses per 1000 instructions (mean over seeds).
    pub db_miss_per_kilo: f64,
    /// Database buffer-pool bytes resident (first seed).
    pub db_pool_bytes: u64,
    /// Seeds the run averaged over.
    pub seeds: u64,
}

impl ClusterReport {
    /// Renders the two tiers side by side.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Two-tier co-simulation: application server vs database",
            &["metric", "app server", "database"],
        );
        t.row(&[
            "throughput".into(),
            format!("{} BBops/s", fnum(self.app.throughput())),
            format!("{} queries", self.db_queries),
        ]);
        t.row(&["CPI".into(), fnum(self.app.cpi.cpi()), fnum(self.db_cpi)]);
        t.row(&[
            "data misses / 1000 instr".into(),
            fnum(self.app_miss_per_kilo),
            fnum(self.db_miss_per_kilo),
        ]);
        t.row(&[
            "memory footprint".into(),
            String::from("(heap; see Figure 11)"),
            fbytes(self.db_pool_bytes),
        ]);
        t
    }
}

/// One seed's app-tier measurement: the window report, the raw miss
/// numerator/denominator, and the query log the database stage consumes.
struct AppTierRun {
    report: WindowReport,
    miss_per_kilo: f64,
    queries: Vec<DbQuery>,
}

/// Runs the two-tier cluster at `pset` app-server processors with a
/// core-per-worker plan.
pub fn run_cluster(pset: usize, effort: Effort) -> ClusterReport {
    run_cluster_with(&ExperimentPlan::new(effort), pset)
}

/// Runs the two-tier cluster over `plan`'s worker pool.
///
/// Stage 1 fans the app-server seeds across the pool (each seed builds
/// its own machine with query logging on); stage 2 replays each seed's
/// query log into its own database machine. Logs flow between the
/// stages in seed order and every reduction happens after the merge, so
/// the report is bit-identical at any worker count.
pub fn run_cluster_with(plan: &ExperimentPlan, pset: usize) -> ClusterReport {
    let effort = plan.effort();
    // Stage 1: the application-server tier, one job per seed. All seeds
    // cost the same here; the hint matters when callers mix psets.
    let seeds: Vec<u64> = (1..=effort.seeds()).collect();
    let apps: Vec<AppTierRun> = plan.run_hinted(
        &seeds,
        |_| effort.cost_hint(pset),
        |&seed| {
            let mut cfg = EcperfConfig::scaled(10, effort.scale_divisor());
            cfg.threads = (pset * 6).clamp(12, 96);
            cfg.db_connections = (cfg.threads as u32 / 2).max(2);
            cfg.log_queries = true;
            let mut app: Machine<Ecperf> = ecperf_machine_with(pset, cfg, seed);
            let report = measure(&mut app, effort);
            let miss_per_kilo = app.memory().stats().data().l2_misses as f64 * 1000.0
                / report.cpi.instructions.max(1) as f64;
            let queries = app.workload_mut().take_query_log();
            AppTierRun {
                report,
                miss_per_kilo,
                queries,
            }
        },
    );

    // Stage 2: each log replays into its own database tier. Log length
    // is the natural cost hint — busier app seeds make longer replays.
    let db: Vec<(f64, f64, u64)> = plan.run_hinted(
        &apps,
        |a| a.queries.len() as u64 + 1,
        |a| replay_into_database(&a.queries, effort),
    );

    // Merge in seed order; all floating-point reductions happen here,
    // after both stages, never inside a worker.
    let n = apps.len().max(1) as f64;
    ClusterReport {
        app: apps[0].report.clone(),
        app_miss_per_kilo: apps.iter().map(|a| a.miss_per_kilo).sum::<f64>() / n,
        db_queries: apps.iter().map(|a| a.queries.len() as u64).sum(),
        db_cpi: db.iter().map(|d| d.0).sum::<f64>() / n,
        db_miss_per_kilo: db.iter().map(|d| d.1).sum::<f64>() / n,
        db_pool_bytes: db[0].2,
        seeds: apps.len() as u64,
    }
}

/// Replays a query log into a fresh database machine; returns
/// `(cpi, data misses per 1000 instructions, pool bytes)`.
pub fn replay_into_database(queries: &[DbQuery], effort: Effort) -> (f64, f64, u64) {
    let mut db = Database::new(
        DatabaseConfig {
            keyspace_divisor: effort.scale_divisor(),
            ..DatabaseConfig::default()
        },
        memsys::AddrRange::new(memsys::Addr(DB_MACHINE_BASE), 256 << 20),
    );
    let mut machine = MemorySystem::e6000(1).expect("db machine");
    let mut timer = CpuTimer::e6000();

    struct TierSink<'a> {
        sys: SystemSink<'a>,
        timer: &'a mut CpuTimer,
    }
    impl memsys::MemSink for TierSink<'_> {
        fn instructions(&mut self, n: u64) {
            self.timer.retire(n);
        }
        fn access(&mut self, kind: memsys::AccessKind, addr: memsys::Addr) {
            self.sys.access(kind, addr);
        }
    }
    // SystemSink discards instruction counts; wrap to keep them.
    {
        let mut sink = TierSink {
            sys: SystemSink::new(&mut machine, 0),
            timer: &mut timer,
        };
        for q in queries {
            if q.write {
                if !db.update(q.ty, q.key, &mut sink) {
                    let _ = db.insert(q.ty, &mut sink);
                }
            } else {
                let _ = db.select(q.ty, q.key, &mut sink);
            }
        }
    }
    // Charge the misses into the timer for a CPI figure.
    let stats = machine.stats();
    let report = timer.report();
    let instr = report.instructions.max(1);
    let data = stats.data();
    let miss_per_kilo = data.l2_misses as f64 * 1000.0 / instr as f64;
    // CPI from base + a memory-latency charge per L2 miss.
    let lat = simcpu::LatencyTable::e6000();
    let cycles = report.cycles() + data.l2_misses * lat.memory + data.l1_misses * lat.l2_hit;
    let cpi = cycles as f64 / instr as f64;
    (cpi, miss_per_kilo, db.pool_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_runs_both_tiers() {
        let r = run_cluster(2, Effort::Quick);
        assert!(
            r.app.transactions > 50,
            "app tier ran: {}",
            r.app.transactions
        );
        assert!(r.db_queries > 50, "queries were logged: {}", r.db_queries);
        assert!(r.db_cpi > 1.0, "db CPI plausible: {}", r.db_cpi);
        assert!(r.db_pool_bytes > 0);
        assert_eq!(r.seeds, 1);
        assert!(r.table().to_string().contains("Two-tier"));
    }

    #[test]
    fn replay_is_deterministic() {
        let queries = vec![
            DbQuery {
                ty: workloads::ecperf::beans::BeanType::Customer,
                key: 5,
                write: false,
            };
            100
        ];
        let a = replay_into_database(&queries, Effort::Quick);
        let b = replay_into_database(&queries, Effort::Quick);
        assert_eq!(a, b);
    }
}
