//! Two-tier co-simulation: the application server plus the database
//! machine.
//!
//! The paper's ECperf deployment spans four machines (Figure 3); its
//! simulations ran four Simics instances and *filtered* the traffic so
//! that only the application server's processors reached the memory-
//! system simulator (Section 3.3). This module reproduces that workflow:
//! the application-server tier runs on its [`Machine`] as usual (remote
//! tiers modeled as reply latencies), every database query is logged, and
//! the log is then replayed into the database tier — its own machine with
//! its own address space, caches and timing — so both tiers' memory
//! behavior can be reported side by side, with the middle tier cleanly
//! isolated exactly as the paper isolates it.

use memsys::{MemorySystem, SystemSink};
use simcpu::CpuTimer;
use simstats::{fbytes, fnum, Table};
use workloads::ecperf::database::{Database, DatabaseConfig};
use workloads::ecperf::{DbQuery, Ecperf, EcperfConfig};

use crate::engine::{Machine, WindowReport};
use crate::experiment::{ecperf_machine_with, measure};
use crate::Effort;

/// Address base of the database machine's memory (its own machine: the
/// space is independent of the app server's, the constant just keeps the
/// two visually distinct in traces).
const DB_MACHINE_BASE: u64 = 0x8000_0000;

/// Per-tier results of a cluster run.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// The middle tier's window report (the paper's monitored machine).
    pub app: WindowReport,
    /// App-server data misses per 1000 instructions.
    pub app_miss_per_kilo: f64,
    /// Queries the database served.
    pub db_queries: u64,
    /// Database-tier CPI.
    pub db_cpi: f64,
    /// Database-tier data misses per 1000 instructions.
    pub db_miss_per_kilo: f64,
    /// Database buffer-pool bytes resident.
    pub db_pool_bytes: u64,
}

impl ClusterReport {
    /// Renders the two tiers side by side.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Two-tier co-simulation: application server vs database",
            &["metric", "app server", "database"],
        );
        t.row(&[
            "throughput".into(),
            format!("{} BBops/s", fnum(self.app.throughput())),
            format!("{} queries", self.db_queries),
        ]);
        t.row(&["CPI".into(), fnum(self.app.cpi.cpi()), fnum(self.db_cpi)]);
        t.row(&[
            "data misses / 1000 instr".into(),
            fnum(self.app_miss_per_kilo),
            fnum(self.db_miss_per_kilo),
        ]);
        t.row(&[
            "memory footprint".into(),
            String::from("(heap; see Figure 11)"),
            fbytes(self.db_pool_bytes),
        ]);
        t
    }
}

/// Runs the two-tier cluster at `pset` app-server processors.
pub fn run_cluster(pset: usize, effort: Effort) -> ClusterReport {
    // Tier 1: the application server, with query logging on.
    let mut cfg = EcperfConfig::scaled(10, effort.scale_divisor());
    cfg.threads = (pset * 6).clamp(12, 96);
    cfg.db_connections = (cfg.threads as u32 / 2).max(2);
    cfg.log_queries = true;
    let mut app: Machine<Ecperf> = ecperf_machine_with(pset, cfg, 1);
    let report = measure(&mut app, effort);
    let app_miss_per_kilo = app.memory().stats().data().l2_misses as f64 * 1000.0
        / report.cpi.instructions.max(1) as f64;
    let queries = app.workload_mut().take_query_log();

    // Tier 2: the database machine (uniprocessor, its own caches).
    let (db_cpi, db_miss_per_kilo, db_pool_bytes) = replay_into_database(&queries, effort);

    ClusterReport {
        app: report,
        app_miss_per_kilo,
        db_queries: queries.len() as u64,
        db_cpi,
        db_miss_per_kilo,
        db_pool_bytes,
    }
}

/// Replays a query log into a fresh database machine; returns
/// `(cpi, data misses per 1000 instructions, pool bytes)`.
pub fn replay_into_database(queries: &[DbQuery], effort: Effort) -> (f64, f64, u64) {
    let mut db = Database::new(
        DatabaseConfig {
            keyspace_divisor: effort.scale_divisor(),
            ..DatabaseConfig::default()
        },
        memsys::AddrRange::new(memsys::Addr(DB_MACHINE_BASE), 256 << 20),
    );
    let mut machine = MemorySystem::e6000(1).expect("db machine");
    let mut timer = CpuTimer::e6000();

    struct TierSink<'a> {
        sys: SystemSink<'a>,
        timer: &'a mut CpuTimer,
    }
    impl memsys::MemSink for TierSink<'_> {
        fn instructions(&mut self, n: u64) {
            self.timer.retire(n);
        }
        fn access(&mut self, kind: memsys::AccessKind, addr: memsys::Addr) {
            self.sys.access(kind, addr);
        }
    }
    // SystemSink discards instruction counts; wrap to keep them.
    {
        let mut sink = TierSink {
            sys: SystemSink::new(&mut machine, 0),
            timer: &mut timer,
        };
        for q in queries {
            if q.write {
                if !db.update(q.ty, q.key, &mut sink) {
                    let _ = db.insert(q.ty, &mut sink);
                }
            } else {
                let _ = db.select(q.ty, q.key, &mut sink);
            }
        }
    }
    // Charge the misses into the timer for a CPI figure.
    let stats = machine.stats();
    let report = timer.report();
    let instr = report.instructions.max(1);
    let data = stats.data();
    let miss_per_kilo = data.l2_misses as f64 * 1000.0 / instr as f64;
    // CPI from base + a memory-latency charge per L2 miss.
    let lat = simcpu::LatencyTable::e6000();
    let cycles = report.cycles() + data.l2_misses * lat.memory + data.l1_misses * lat.l2_hit;
    let cpi = cycles as f64 / instr as f64;
    (cpi, miss_per_kilo, db.pool_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_runs_both_tiers() {
        let r = run_cluster(2, Effort::Quick);
        assert!(
            r.app.transactions > 50,
            "app tier ran: {}",
            r.app.transactions
        );
        assert!(r.db_queries > 50, "queries were logged: {}", r.db_queries);
        assert!(r.db_cpi > 1.0, "db CPI plausible: {}", r.db_cpi);
        assert!(r.db_pool_bytes > 0);
        assert!(r.table().to_string().contains("Two-tier"));
    }

    #[test]
    fn replay_is_deterministic() {
        let queries = vec![
            DbQuery {
                ty: workloads::ecperf::beans::BeanType::Customer,
                key: 5,
                write: false,
            };
            100
        ];
        let a = replay_into_database(&queries, Effort::Quick);
        let b = replay_into_database(&queries, Effort::Quick);
        assert_eq!(a, b);
    }
}
