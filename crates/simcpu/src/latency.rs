//! Memory-access latencies in processor cycles.
//!
//! The paper's host is a Sun E6000: 248 MHz UltraSPARC II processors on a
//! Gigaplane snooping bus. Section 4.3 reports that a cache-to-cache
//! transfer takes roughly 40% longer than an access to main memory on the
//! E6000, and cites 200–300% penalties for directory-based NUMA systems
//! (AlphaServer GS320). The table is the single place where the simulator
//! turns [`HitLevel`]s into cycles.

use memsys::{AccessOutcome, HitLevel};

/// Stall cycles charged per access, by where the access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyTable {
    /// L1 hit (fully pipelined: no stall).
    pub l1_hit: u64,
    /// L2 hit.
    pub l2_hit: u64,
    /// Ownership upgrade (bus round trip, no data).
    pub upgrade: u64,
    /// Fill from main memory.
    pub memory: u64,
    /// Fill from a remote dirty cache (snoop copyback).
    pub cache_to_cache: u64,
}

impl LatencyTable {
    /// E6000-like latencies at 248 MHz: ~300 ns memory (≈75 cycles),
    /// cache-to-cache 40% longer (≈105 cycles, per Section 4.3 and the
    /// WildFire paper), ~10-cycle L2.
    pub fn e6000() -> Self {
        LatencyTable {
            l1_hit: 0,
            l2_hit: 10,
            upgrade: 60,
            memory: 75,
            cache_to_cache: 105,
        }
    }

    /// A directory-protocol NUMA machine where a dirty remote fetch costs
    /// 2.5x memory (the 200–300% penalty quoted in Section 4.3) — used by
    /// the cache-to-cache-latency sensitivity ablation.
    pub fn numa() -> Self {
        LatencyTable {
            cache_to_cache: 75 * 5 / 2,
            ..LatencyTable::e6000()
        }
    }

    /// A copy of this table with the cache-to-cache latency scaled by
    /// `factor` relative to memory latency.
    pub fn with_c2c_factor(self, factor: f64) -> Self {
        LatencyTable {
            cache_to_cache: (self.memory as f64 * factor).round() as u64,
            ..self
        }
    }

    /// Stall cycles for an access satisfied at `level`.
    #[inline]
    pub fn stall_for(&self, level: HitLevel) -> u64 {
        match level {
            HitLevel::L1 => self.l1_hit,
            HitLevel::L2 => self.l2_hit,
            HitLevel::Upgrade => self.upgrade,
            HitLevel::Memory => self.memory,
            HitLevel::CacheToCache => self.cache_to_cache,
        }
    }

    /// Stall cycles for one access outcome: the backend-supplied memory
    /// cost when the memory system attached one
    /// ([`AccessOutcome::mem_cycles`], the banked-DRAM model's
    /// load-dependent latency), otherwise this table's constant for the
    /// hit level — the pre-backend behavior, bit for bit.
    #[inline]
    pub fn cost_of(&self, outcome: &AccessOutcome) -> u64 {
        outcome
            .mem_cycles
            .unwrap_or_else(|| self.stall_for(outcome.level))
    }
}

impl Default for LatencyTable {
    fn default() -> Self {
        LatencyTable::e6000()
    }
}

/// The E6000's processor clock, used to convert cycles to wall time.
pub const CLOCK_HZ: u64 = 248_000_000;

/// Converts cycles to seconds at the E6000 clock.
pub fn cycles_to_seconds(cycles: u64) -> f64 {
    cycles as f64 / CLOCK_HZ as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e6000_c2c_is_forty_percent_over_memory() {
        let t = LatencyTable::e6000();
        let ratio = t.cache_to_cache as f64 / t.memory as f64;
        assert!((ratio - 1.4).abs() < 0.01, "paper Section 4.3: ~40% longer");
    }

    #[test]
    fn numa_c2c_penalty_in_cited_range() {
        let t = LatencyTable::numa();
        let ratio = t.cache_to_cache as f64 / t.memory as f64;
        assert!((2.0..=3.0).contains(&ratio));
    }

    #[test]
    fn stall_for_maps_every_level() {
        let t = LatencyTable::e6000();
        assert_eq!(t.stall_for(HitLevel::L1), 0);
        assert_eq!(t.stall_for(HitLevel::L2), t.l2_hit);
        assert_eq!(t.stall_for(HitLevel::Upgrade), t.upgrade);
        assert_eq!(t.stall_for(HitLevel::Memory), t.memory);
        assert_eq!(t.stall_for(HitLevel::CacheToCache), t.cache_to_cache);
    }

    #[test]
    fn c2c_factor_scales_from_memory() {
        let t = LatencyTable::e6000().with_c2c_factor(2.0);
        assert_eq!(t.cache_to_cache, 150);
    }

    #[test]
    fn clock_conversion() {
        assert!((cycles_to_seconds(CLOCK_HZ) - 1.0).abs() < 1e-12);
    }
}
