//! Store-buffer occupancy model.
//!
//! The UltraSPARC II retires stores into a small store buffer that drains
//! to the (write-through) L1/L2 in the background; the pipeline only stalls
//! when the buffer is full. The paper (Section 4.2) measures store-buffer
//! stalls at just 1–2% of execution time, and the breakdown in Figure 7
//! carries them as a thin slice of data-stall time. This model reproduces
//! that mechanism: each store occupies a slot until its memory-system
//! latency has elapsed; enqueueing into a full buffer stalls the processor
//! until the oldest entry drains.

/// A fixed-capacity store buffer tracked in processor cycles.
#[derive(Debug, Clone)]
pub struct StoreBuffer {
    /// Completion times of in-flight stores (a ring; oldest first).
    slots: Vec<u64>,
    head: usize,
    len: usize,
}

/// UltraSPARC II store-buffer depth.
pub const DEFAULT_DEPTH: usize = 8;

impl StoreBuffer {
    /// Creates an empty buffer with `depth` entries.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "store buffer depth must be positive");
        StoreBuffer {
            slots: vec![0; depth],
            head: 0,
            len: 0,
        }
    }

    /// Number of stores currently in flight at time `now`.
    pub fn occupancy(&mut self, now: u64) -> usize {
        self.drain(now);
        self.len
    }

    fn drain(&mut self, now: u64) {
        while self.len > 0 && self.slots[self.head] <= now {
            self.head = (self.head + 1) % self.slots.len();
            self.len -= 1;
        }
    }

    /// Enqueues a store issued at cycle `now` whose memory operation takes
    /// `latency` cycles. Returns the stall cycles suffered by the pipeline
    /// (non-zero only when the buffer was full).
    pub fn push(&mut self, now: u64, latency: u64) -> u64 {
        self.drain(now);
        let cap = self.slots.len();
        let (start, stall) = if self.len == cap {
            // Stall until the oldest entry completes.
            let free_at = self.slots[self.head];
            self.head = (self.head + 1) % cap;
            self.len -= 1;
            (free_at, free_at - now)
        } else {
            (now, 0)
        };
        let tail = (self.head + self.len) % cap;
        self.slots[tail] = start + latency;
        self.len += 1;
        stall
    }

    /// Empties the buffer (context switch / barrier).
    pub fn flush(&mut self) {
        self.len = 0;
    }
}

impl Default for StoreBuffer {
    fn default() -> Self {
        StoreBuffer::new(DEFAULT_DEPTH)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stores_below_depth_never_stall() {
        let mut sb = StoreBuffer::new(4);
        for i in 0..4 {
            assert_eq!(sb.push(i, 100), 0);
        }
        assert_eq!(sb.occupancy(3), 4);
    }

    #[test]
    fn full_buffer_stalls_until_oldest_drains() {
        let mut sb = StoreBuffer::new(2);
        assert_eq!(sb.push(0, 10), 0); // completes at 10
        assert_eq!(sb.push(0, 10), 0); // completes at 10
        let stall = sb.push(0, 10);
        assert_eq!(stall, 10, "must wait for the first store");
    }

    #[test]
    fn buffer_drains_with_time() {
        let mut sb = StoreBuffer::new(2);
        sb.push(0, 10);
        sb.push(0, 10);
        assert_eq!(sb.occupancy(10), 0);
        assert_eq!(sb.push(10, 10), 0);
    }

    #[test]
    fn serialized_full_pushes_accumulate_completion_times() {
        let mut sb = StoreBuffer::new(1);
        assert_eq!(sb.push(0, 100), 0);
        assert_eq!(sb.push(0, 100), 100); // waits to 100, completes at 200
        assert_eq!(sb.push(0, 100), 200); // waits to 200
    }

    #[test]
    fn flush_empties() {
        let mut sb = StoreBuffer::new(2);
        sb.push(0, 1000);
        sb.push(0, 1000);
        sb.flush();
        assert_eq!(sb.occupancy(0), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_depth_panics() {
        let _ = StoreBuffer::new(0);
    }
}
