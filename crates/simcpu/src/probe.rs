//! Counter-registry descriptors for the processor timing model.
//!
//! - `cpustat.*` — [`CounterSample`], under the UltraSPARC II event
//!   names the paper reads through Solaris `cpustat` (Section 4.3);
//! - `cpu.*` — [`CpiReport`], the CPI/stall decomposition behind the
//!   paper's Figure 7 stacks.
//!
//! As everywhere in the registry, `values` destructures exhaustively so
//! a new field cannot go unregistered.

use probes::registry::{CounterDesc, CounterKind, CounterSet};

use crate::counters::CounterSample;
use crate::pipeline::{CpiReport, DataStall};

const fn count(name: &'static str) -> CounterDesc {
    CounterDesc::new(name, CounterKind::Count)
}

const fn cycles(name: &'static str) -> CounterDesc {
    CounterDesc::new(name, CounterKind::Cycles)
}

static COUNTER_SAMPLE_DESCS: [CounterDesc; 4] = [
    cycles("cpustat.cycle_cnt"),
    count("cpustat.instr_cnt"),
    count("cpustat.ec_snoop_cb"),
    count("cpustat.ec_misses"),
];

impl CounterSet for CounterSample {
    fn descriptors(&self) -> &'static [CounterDesc] {
        &COUNTER_SAMPLE_DESCS
    }

    fn values(&self, out: &mut Vec<u64>) {
        let CounterSample {
            cycle_cnt,
            instr_cnt,
            ec_snoop_cb,
            ec_misses,
        } = self;
        out.extend([*cycle_cnt, *instr_cnt, *ec_snoop_cb, *ec_misses]);
    }
}

static CPI_REPORT_DESCS: [CounterDesc; 10] = [
    count("cpu.instructions"),
    count("cpu.loads"),
    count("cpu.stores"),
    cycles("cpu.base_cycles"),
    cycles("cpu.instr_stall"),
    cycles("cpu.stall.store_buffer"),
    cycles("cpu.stall.raw_hazard"),
    cycles("cpu.stall.l2_hit"),
    cycles("cpu.stall.c2c"),
    cycles("cpu.stall.memory"),
];

impl CounterSet for CpiReport {
    fn descriptors(&self) -> &'static [CounterDesc] {
        &CPI_REPORT_DESCS
    }

    fn values(&self, out: &mut Vec<u64>) {
        let CpiReport {
            instructions,
            loads,
            stores,
            base_cycles,
            instr_stall,
            data_stall,
        } = self;
        let DataStall {
            store_buffer,
            raw_hazard,
            l2_hit,
            cache_to_cache,
            memory,
        } = data_stall;
        out.extend([
            *instructions,
            *loads,
            *stores,
            *base_cycles,
            *instr_stall,
            *store_buffer,
            *raw_hazard,
            *l2_hit,
            *cache_to_cache,
            *memory,
        ]);
    }
}

/// Every descriptor table this crate declares, for the `simdiff`
/// drift policy. The processor model is a deterministic state machine,
/// so every counter here is `Exact` (the `CounterDesc` default).
pub fn descriptor_tables() -> Vec<&'static [CounterDesc]> {
    vec![&COUNTER_SAMPLE_DESCS, &CPI_REPORT_DESCS]
}

#[cfg(test)]
mod tests {
    use super::*;
    use probes::registry::Snapshot;

    #[test]
    fn cpi_report_registers_every_stall_bucket() {
        let report = CpiReport {
            instructions: 100,
            loads: 30,
            stores: 10,
            base_cycles: 120,
            instr_stall: 8,
            data_stall: DataStall {
                store_buffer: 1,
                raw_hazard: 2,
                l2_hit: 3,
                cache_to_cache: 4,
                memory: 5,
            },
        };
        let snap = Snapshot::of(&report);
        assert!(snap.names_unique());
        assert_eq!(snap.len(), 10);
        assert_eq!(snap.get("cpu.stall.c2c"), Some(4));
        // The snapshot's cycle counters reproduce the report's total.
        let total: u64 = ["cpu.base_cycles", "cpu.instr_stall"]
            .iter()
            .chain(
                [
                    "cpu.stall.store_buffer",
                    "cpu.stall.raw_hazard",
                    "cpu.stall.l2_hit",
                    "cpu.stall.c2c",
                    "cpu.stall.memory",
                ]
                .iter(),
            )
            .map(|n| snap.get(n).unwrap())
            .sum();
        assert_eq!(total, report.cycles());
    }

    #[test]
    fn counter_sample_uses_cpustat_names() {
        let s = CounterSample {
            cycle_cnt: 9,
            instr_cnt: 4,
            ec_snoop_cb: 2,
            ec_misses: 3,
        };
        let snap = Snapshot::of(&s);
        assert_eq!(snap.get("cpustat.cycle_cnt"), Some(9));
        assert_eq!(snap.get("cpustat.ec_snoop_cb"), Some(2));
    }
}
