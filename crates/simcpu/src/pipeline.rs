//! In-order pipeline timing and CPI/stall accounting.
//!
//! The UltraSPARC II is a 4-wide in-order processor. Following the paper's
//! methodology (Section 4.2), execution time per processor is decomposed
//! into:
//!
//! - **other** — instruction execution plus all non-memory stalls (the
//!   paper's "Other" CPI slice), charged as a fixed base CPI;
//! - **instruction stall** — I-fetch misses;
//! - **data stall** — load misses (by supplier: L2 hit, cache-to-cache,
//!   memory), store-buffer-full stalls, and read-after-write hazards.
//!
//! Stores normally retire into the [`StoreBuffer`] without stalling; their
//! memory latency only surfaces when the buffer fills, exactly the
//! mechanism the paper credits for store-buffer stalls being only 1–2% of
//! execution time.

use memsys::AccessOutcome;
use probes::Histogram;

use crate::latency::LatencyTable;
use crate::storebuf::{StoreBuffer, DEFAULT_DEPTH};

/// Tunable pipeline parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineParams {
    /// Base CPI covering execution and non-memory stalls (the "Other"
    /// slice; ~1.3 for these workloads on a 4-wide in-order core).
    pub base_cpi: f64,
    /// One load in `raw_hazard_period` is not sufficiently separated from a
    /// preceding store and suffers a short hazard stall (Section 4.2: ~1%
    /// of execution time).
    pub raw_hazard_period: u64,
    /// Cycles lost to one read-after-write hazard.
    pub raw_hazard_cycles: u64,
    /// Store-buffer depth.
    pub store_buffer_depth: usize,
}

impl Default for PipelineParams {
    fn default() -> Self {
        PipelineParams {
            base_cpi: 1.3,
            raw_hazard_period: 40,
            raw_hazard_cycles: 4,
            store_buffer_depth: DEFAULT_DEPTH,
        }
    }
}

/// The stall cycles one access charged the pipeline, returned from
/// [`CpuTimer::ifetch`]/[`CpuTimer::load`]/[`CpuTimer::store`] so
/// observers can attribute cycles per access without re-deriving the
/// timer's accounting. For loads, `raw_cycles` carries the periodic
/// read-after-write hazard share separately from the miss latency; for
/// stores, `cycles` is only the buffer-full stall (the paper's
/// store-buffer slice), not the hidden write latency.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallCharge {
    /// Stall cycles attributable to the access outcome itself.
    pub cycles: u64,
    /// Read-after-write hazard cycles this access happened to trigger.
    pub raw_cycles: u64,
}

/// Data-stall cycles broken down by cause (the paper's Figure 7 slices).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DataStall {
    /// Pipeline blocked on a full store buffer.
    pub store_buffer: u64,
    /// Read-after-write hazards.
    pub raw_hazard: u64,
    /// Loads satisfied by the L2.
    pub l2_hit: u64,
    /// Loads satisfied by a remote cache (cache-to-cache).
    pub cache_to_cache: u64,
    /// Loads satisfied by memory.
    pub memory: u64,
}

impl DataStall {
    /// Total data-stall cycles.
    pub fn total(&self) -> u64 {
        self.store_buffer + self.raw_hazard + self.l2_hit + self.cache_to_cache + self.memory
    }
}

/// Per-processor cycle/instruction accounting.
#[derive(Debug, Clone)]
pub struct CpuTimer {
    params: PipelineParams,
    lat: LatencyTable,
    storebuf: StoreBuffer,
    instructions: u64,
    loads: u64,
    stores: u64,
    base_cycles: f64,
    instr_stall: u64,
    data_stall: DataStall,
    /// Per-store drain-time histogram (pipeline stall + write latency);
    /// `None` until [`CpuTimer::enable_drain_hist`].
    drain_hist: Option<Histogram>,
}

impl CpuTimer {
    /// Creates a timer with the given parameters and latency table.
    pub fn new(params: PipelineParams, lat: LatencyTable) -> Self {
        CpuTimer {
            storebuf: StoreBuffer::new(params.store_buffer_depth),
            params,
            lat,
            instructions: 0,
            loads: 0,
            stores: 0,
            base_cycles: 0.0,
            instr_stall: 0,
            data_stall: DataStall::default(),
            drain_hist: None,
        }
    }

    /// An E6000-like timer with default parameters.
    pub fn e6000() -> Self {
        CpuTimer::new(PipelineParams::default(), LatencyTable::e6000())
    }

    /// The latency table in use.
    pub fn latencies(&self) -> &LatencyTable {
        &self.lat
    }

    /// Retires `n` instructions (charging base CPI).
    #[inline]
    pub fn retire(&mut self, n: u64) {
        self.instructions += n;
        self.base_cycles += n as f64 * self.params.base_cpi;
    }

    /// Current busy-cycle count.
    #[inline]
    pub fn cycles(&self) -> u64 {
        self.base_cycles as u64 + self.instr_stall + self.data_stall.total()
    }

    /// Charges an instruction-fetch outcome.
    #[inline]
    pub fn ifetch(&mut self, outcome: &AccessOutcome) -> StallCharge {
        let stall = self.lat.cost_of(outcome);
        self.instr_stall += stall;
        StallCharge {
            cycles: stall,
            raw_cycles: 0,
        }
    }

    /// Charges a load outcome, including its periodic RAW hazard share.
    #[inline]
    pub fn load(&mut self, outcome: &AccessOutcome) -> StallCharge {
        self.loads += 1;
        let stall = self.lat.cost_of(outcome);
        match outcome.level {
            memsys::HitLevel::L1 => {}
            memsys::HitLevel::L2 => self.data_stall.l2_hit += stall,
            memsys::HitLevel::CacheToCache => self.data_stall.cache_to_cache += stall,
            memsys::HitLevel::Memory => self.data_stall.memory += stall,
            memsys::HitLevel::Upgrade => self.data_stall.memory += stall,
        }
        let raw = if self.loads.is_multiple_of(self.params.raw_hazard_period) {
            self.data_stall.raw_hazard += self.params.raw_hazard_cycles;
            self.params.raw_hazard_cycles
        } else {
            0
        };
        StallCharge {
            // L1 hits stall nothing even though the table costs them 0
            // anyway; mirror the accumulation above exactly.
            cycles: if outcome.level == memsys::HitLevel::L1 {
                0
            } else {
                stall
            },
            raw_cycles: raw,
        }
    }

    /// Retires a store through the store buffer; only buffer-full time
    /// stalls the pipeline.
    #[inline]
    pub fn store(&mut self, outcome: &AccessOutcome) -> StallCharge {
        self.stores += 1;
        let latency = self.lat.cost_of(outcome);
        let now = self.cycles();
        let stall = self.storebuf.push(now, latency);
        self.data_stall.store_buffer += stall;
        if let Some(h) = &mut self.drain_hist {
            // Time to drain this store: any buffer-full stall it caused
            // plus its own write latency behind the buffer.
            h.record(stall + latency);
        }
        StallCharge {
            cycles: stall,
            raw_cycles: 0,
        }
    }

    /// Enables per-store drain-time histogramming. Costs one array
    /// increment per store.
    pub fn enable_drain_hist(&mut self) {
        if self.drain_hist.is_none() {
            self.drain_hist = Some(Histogram::new());
        }
    }

    /// The store drain-time histogram, if enabled.
    pub fn drain_hist(&self) -> Option<&Histogram> {
        self.drain_hist.as_ref()
    }

    /// Charges externally modeled stall cycles (e.g. software TLB-miss
    /// traps), accounted under the "Other" slice like the paper's
    /// non-memory stalls.
    #[inline]
    pub fn stall_extra(&mut self, cycles: u64) {
        self.base_cycles += cycles as f64;
    }

    /// The accumulated report.
    pub fn report(&self) -> CpiReport {
        CpiReport {
            instructions: self.instructions,
            loads: self.loads,
            stores: self.stores,
            base_cycles: self.base_cycles as u64,
            instr_stall: self.instr_stall,
            data_stall: self.data_stall,
        }
    }

    /// Resets counters (keeps parameters); used between warm-up and
    /// measurement windows.
    pub fn reset(&mut self) {
        self.instructions = 0;
        self.loads = 0;
        self.stores = 0;
        self.base_cycles = 0.0;
        self.instr_stall = 0;
        self.data_stall = DataStall::default();
        self.storebuf.flush();
        if let Some(h) = &mut self.drain_hist {
            *h = Histogram::new();
        }
    }
}

/// A finished CPI/stall breakdown (one processor, one window).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CpiReport {
    /// Instructions retired.
    pub instructions: u64,
    /// Loads issued.
    pub loads: u64,
    /// Stores issued.
    pub stores: u64,
    /// Cycles charged as base execution ("Other").
    pub base_cycles: u64,
    /// Instruction-stall cycles.
    pub instr_stall: u64,
    /// Data-stall cycles by cause.
    pub data_stall: DataStall,
}

impl CpiReport {
    /// Total busy cycles.
    pub fn cycles(&self) -> u64 {
        self.base_cycles + self.instr_stall + self.data_stall.total()
    }

    /// Overall cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles() as f64 / self.instructions as f64
        }
    }

    /// The instruction-stall CPI component.
    pub fn instr_stall_cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.instr_stall as f64 / self.instructions as f64
        }
    }

    /// The data-stall CPI component.
    pub fn data_stall_cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.data_stall.total() as f64 / self.instructions as f64
        }
    }

    /// The "Other" CPI component.
    pub fn other_cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.base_cycles as f64 / self.instructions as f64
        }
    }

    /// Fraction of total execution time spent stalled on data.
    pub fn data_stall_fraction(&self) -> f64 {
        let c = self.cycles();
        if c == 0 {
            0.0
        } else {
            self.data_stall.total() as f64 / c as f64
        }
    }

    /// Merges two per-window or per-processor reports.
    pub fn merge(&self, other: &CpiReport) -> CpiReport {
        CpiReport {
            instructions: self.instructions + other.instructions,
            loads: self.loads + other.loads,
            stores: self.stores + other.stores,
            base_cycles: self.base_cycles + other.base_cycles,
            instr_stall: self.instr_stall + other.instr_stall,
            data_stall: DataStall {
                store_buffer: self.data_stall.store_buffer + other.data_stall.store_buffer,
                raw_hazard: self.data_stall.raw_hazard + other.data_stall.raw_hazard,
                l2_hit: self.data_stall.l2_hit + other.data_stall.l2_hit,
                cache_to_cache: self.data_stall.cache_to_cache + other.data_stall.cache_to_cache,
                memory: self.data_stall.memory + other.data_stall.memory,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsys::{AccessOutcome, HitLevel};

    fn out(level: HitLevel) -> AccessOutcome {
        AccessOutcome {
            level,
            c2c: level == HitLevel::CacheToCache,
            writeback: false,
            mem_cycles: None,
        }
    }

    #[test]
    fn backend_supplied_cost_overrides_the_table() {
        let mut t = CpuTimer::e6000();
        t.retire(100);
        let mut o = out(HitLevel::Memory);
        o.mem_cycles = Some(240);
        t.load(&o);
        assert_eq!(t.report().data_stall.memory, 240);
        t.ifetch(&o);
        assert_eq!(t.report().instr_stall, 240);
    }

    #[test]
    fn pure_execution_gives_base_cpi() {
        let mut t = CpuTimer::e6000();
        t.retire(1000);
        let r = t.report();
        assert!((r.cpi() - 1.3).abs() < 0.01);
        assert_eq!(r.instr_stall, 0);
        assert_eq!(r.data_stall.total(), 0);
    }

    #[test]
    fn load_misses_accumulate_by_source() {
        let mut t = CpuTimer::e6000();
        t.retire(100);
        t.load(&out(HitLevel::L2));
        t.load(&out(HitLevel::Memory));
        t.load(&out(HitLevel::CacheToCache));
        let r = t.report();
        assert_eq!(r.data_stall.l2_hit, 10);
        assert_eq!(r.data_stall.memory, 75);
        assert_eq!(r.data_stall.cache_to_cache, 105);
    }

    #[test]
    fn c2c_loads_cost_more_than_memory_loads() {
        let mut a = CpuTimer::e6000();
        let mut b = CpuTimer::e6000();
        a.retire(100);
        b.retire(100);
        for _ in 0..10 {
            a.load(&out(HitLevel::Memory));
            b.load(&out(HitLevel::CacheToCache));
        }
        assert!(b.report().cycles() > a.report().cycles());
    }

    #[test]
    fn sparse_stores_do_not_stall() {
        let mut t = CpuTimer::e6000();
        for _ in 0..100 {
            t.retire(50); // plenty of time between stores
            t.store(&out(HitLevel::Memory));
        }
        assert_eq!(t.report().data_stall.store_buffer, 0);
    }

    #[test]
    fn store_bursts_fill_the_buffer_and_stall() {
        let mut t = CpuTimer::e6000();
        t.retire(1);
        for _ in 0..32 {
            t.store(&out(HitLevel::Memory)); // back-to-back, no retire
        }
        assert!(t.report().data_stall.store_buffer > 0);
    }

    #[test]
    fn drain_hist_tracks_stall_plus_latency() {
        let mut t = CpuTimer::e6000();
        t.enable_drain_hist();
        t.retire(1);
        for _ in 0..32 {
            t.store(&out(HitLevel::Memory)); // back-to-back burst
        }
        let h = t.drain_hist().unwrap();
        assert_eq!(h.count(), 32);
        // Every store carries at least its own write latency.
        let lat = t.latencies().stall_for(HitLevel::Memory);
        assert!(h.sum() >= 32 * lat);
        // The burst filled the buffer, so the tail includes stall time.
        assert!(h.sum() > 32 * lat, "burst must add buffer-full stalls");
        t.reset();
        assert!(t.drain_hist().unwrap().is_empty(), "reset clears, stays on");
    }

    #[test]
    fn raw_hazards_are_a_small_fraction() {
        let mut t = CpuTimer::e6000();
        for _ in 0..10_000 {
            t.retire(4);
            t.load(&out(HitLevel::L1));
        }
        let r = t.report();
        let raw_frac = r.data_stall.raw_hazard as f64 / r.cycles() as f64;
        assert!(raw_frac > 0.0 && raw_frac < 0.03, "raw fraction {raw_frac}");
    }

    #[test]
    fn report_merge_adds_fields() {
        let mut a = CpuTimer::e6000();
        a.retire(10);
        a.load(&out(HitLevel::Memory));
        let mut b = CpuTimer::e6000();
        b.retire(20);
        b.load(&out(HitLevel::L2));
        let m = a.report().merge(&b.report());
        assert_eq!(m.instructions, 30);
        assert_eq!(m.loads, 2);
        assert_eq!(m.data_stall.memory, 75);
        assert_eq!(m.data_stall.l2_hit, 10);
    }

    #[test]
    fn access_charges_mirror_the_accumulators() {
        let mut t = CpuTimer::e6000();
        t.retire(100);
        assert_eq!(t.load(&out(HitLevel::L1)), StallCharge::default());
        assert_eq!(t.load(&out(HitLevel::Memory)).cycles, 75);
        assert_eq!(t.ifetch(&out(HitLevel::L2)).cycles, 10);
        // Exactly one of the next 40 loads reports the RAW hazard share,
        // and the shares sum to the timer's own slice.
        let raw: u64 = (0..40).map(|_| t.load(&out(HitLevel::L1)).raw_cycles).sum();
        assert_eq!(raw, t.report().data_stall.raw_hazard);
        assert!(raw > 0);
    }

    #[test]
    fn store_charges_sum_to_the_store_buffer_slice() {
        let mut t = CpuTimer::e6000();
        t.retire(1);
        let sum: u64 = (0..32)
            .map(|_| t.store(&out(HitLevel::Memory)).cycles)
            .sum();
        assert_eq!(sum, t.report().data_stall.store_buffer);
        assert!(sum > 0, "a back-to-back burst must stall");
    }

    #[test]
    fn reset_clears_counts() {
        let mut t = CpuTimer::e6000();
        t.retire(100);
        t.load(&out(HitLevel::Memory));
        t.reset();
        assert_eq!(t.report().cycles(), 0);
        assert_eq!(t.report().instructions, 0);
    }

    #[test]
    fn empty_report_has_zero_cpi() {
        let t = CpuTimer::e6000();
        assert_eq!(t.report().cpi(), 0.0);
        assert_eq!(t.report().data_stall_fraction(), 0.0);
    }
}
