//! `cpustat`-style hardware performance counters.
//!
//! The paper measured the native E6000 with the UltraSPARC II's integrated
//! counters through Solaris's `cpustat`: cycle and instruction counts, and
//! the "snoop copyback" event used to derive the cache-to-cache transfer
//! ratio (Section 4.3). This module is a thin veneer exposing the
//! simulator's numbers under the same event names, with interval snapshots
//! so experiments can sample the counters every 100 ms as the paper does
//! for Figure 10.

use std::fmt;

/// A sampled set of UltraSPARC-II-style counter values.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSample {
    /// `Cycle_cnt` — busy cycles.
    pub cycle_cnt: u64,
    /// `Instr_cnt` — instructions retired.
    pub instr_cnt: u64,
    /// `EC_snoop_cb` — snoop copybacks (cache-to-cache transfers supplied).
    pub ec_snoop_cb: u64,
    /// `EC_rd_miss`-style event: L2 demand misses.
    pub ec_misses: u64,
}

impl CounterSample {
    /// Counter deltas between `self` (later) and an earlier sample.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is not actually earlier (any counter larger).
    pub fn since(&self, earlier: &CounterSample) -> CounterSample {
        assert!(
            self.cycle_cnt >= earlier.cycle_cnt
                && self.instr_cnt >= earlier.instr_cnt
                && self.ec_snoop_cb >= earlier.ec_snoop_cb
                && self.ec_misses >= earlier.ec_misses,
            "counter snapshot taken out of order"
        );
        CounterSample {
            cycle_cnt: self.cycle_cnt - earlier.cycle_cnt,
            instr_cnt: self.instr_cnt - earlier.instr_cnt,
            ec_snoop_cb: self.ec_snoop_cb - earlier.ec_snoop_cb,
            ec_misses: self.ec_misses - earlier.ec_misses,
        }
    }

    /// CPI over the sample.
    pub fn cpi(&self) -> f64 {
        if self.instr_cnt == 0 {
            0.0
        } else {
            self.cycle_cnt as f64 / self.instr_cnt as f64
        }
    }

    /// Snoop copybacks as a fraction of L2 misses — the Figure 8 ratio.
    pub fn copyback_ratio(&self) -> f64 {
        if self.ec_misses == 0 {
            0.0
        } else {
            self.ec_snoop_cb as f64 / self.ec_misses as f64
        }
    }
}

impl fmt::Display for CounterSample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Cycle_cnt={} Instr_cnt={} EC_snoop_cb={} EC_misses={}",
            self.cycle_cnt, self.instr_cnt, self.ec_snoop_cb, self.ec_misses
        )
    }
}

/// An interval sampler that turns cumulative samples into per-interval
/// deltas (the Figure 10 time series).
#[derive(Debug, Clone, Default)]
pub struct IntervalSampler {
    last: CounterSample,
    intervals: Vec<CounterSample>,
}

impl IntervalSampler {
    /// Creates a sampler with the counters at zero.
    pub fn new() -> Self {
        IntervalSampler::default()
    }

    /// Records the end of an interval given the cumulative counters.
    pub fn sample(&mut self, cumulative: CounterSample) {
        self.intervals.push(cumulative.since(&self.last));
        self.last = cumulative;
    }

    /// The recorded per-interval deltas.
    pub fn intervals(&self) -> &[CounterSample] {
        &self.intervals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_computes_deltas() {
        let a = CounterSample {
            cycle_cnt: 100,
            instr_cnt: 50,
            ec_snoop_cb: 5,
            ec_misses: 10,
        };
        let b = CounterSample {
            cycle_cnt: 300,
            instr_cnt: 150,
            ec_snoop_cb: 11,
            ec_misses: 30,
        };
        let d = b.since(&a);
        assert_eq!(d.cycle_cnt, 200);
        assert_eq!(d.instr_cnt, 100);
        assert_eq!(d.ec_snoop_cb, 6);
        assert_eq!(d.ec_misses, 20);
        assert!((d.cpi() - 2.0).abs() < 1e-12);
        assert!((d.copyback_ratio() - 0.3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn out_of_order_sample_panics() {
        let a = CounterSample {
            cycle_cnt: 100,
            ..Default::default()
        };
        let _ = CounterSample::default().since(&a);
    }

    #[test]
    fn interval_sampler_produces_series() {
        let mut s = IntervalSampler::new();
        s.sample(CounterSample {
            ec_snoop_cb: 10,
            ..Default::default()
        });
        s.sample(CounterSample {
            ec_snoop_cb: 10,
            ..Default::default()
        });
        s.sample(CounterSample {
            ec_snoop_cb: 25,
            ..Default::default()
        });
        let copybacks: Vec<u64> = s.intervals().iter().map(|i| i.ec_snoop_cb).collect();
        assert_eq!(copybacks, vec![10, 0, 15]);
    }
}
