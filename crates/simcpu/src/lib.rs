//! # simcpu — UltraSPARC-II-like processor timing model
//!
//! Turns [`memsys`] access outcomes into cycles, reproducing the paper's
//! CPI and stall-time decompositions (Figures 6 and 7):
//!
//! - [`latency::LatencyTable`] — E6000 latencies, including the ~40%
//!   cache-to-cache penalty over memory (Section 4.3);
//! - [`pipeline::CpuTimer`] — per-processor cycle accounting with the
//!   paper's breakdown (other / instruction stall / data stall by cause);
//! - [`storebuf::StoreBuffer`] — stores stall only when the buffer fills;
//! - [`counters`] — `cpustat`-style counter sampling for the Figure 10
//!   time series.
//!
//! ## Example
//!
//! ```
//! use memsys::{AccessKind, Addr, MemorySystem};
//! use simcpu::CpuTimer;
//!
//! # fn main() -> Result<(), memsys::ConfigError> {
//! let mut sys = MemorySystem::e6000(1)?;
//! let mut cpu = CpuTimer::e6000();
//! for i in 0..1000u64 {
//!     cpu.retire(4);
//!     let outcome = sys.access(0, memsys::AccessKind::Load, Addr(i * 64));
//!     cpu.load(&outcome);
//! }
//! let report = cpu.report();
//! assert!(report.cpi() > 1.3); // cold misses add data-stall CPI
//! # let _ = AccessKind::Load;
//! # Ok(())
//! # }
//! ```

pub mod counters;
pub mod latency;
pub mod pipeline;
pub mod probe;
pub mod storebuf;

pub use counters::{CounterSample, IntervalSampler};
pub use latency::{cycles_to_seconds, LatencyTable, CLOCK_HZ};
pub use pipeline::{CpiReport, CpuTimer, DataStall, PipelineParams, StallCharge};
pub use storebuf::{StoreBuffer, DEFAULT_DEPTH};
